package wire

import (
	"errors"
	"strings"
	"testing"
)

// Legacy 0–2 byte bodies — everything a pre-tenant client can send — must
// decode as version 0 with the historical semantics: empty means CoIC,
// the first byte is the mode, the optional second byte carries flags.
func TestUnmarshalHelloLegacy(t *testing.T) {
	cases := []struct {
		name string
		body []byte
		want Hello
	}{
		{"empty is coic", nil, Hello{Version: 0, Mode: HelloModeCoIC}},
		{"origin", []byte{HelloModeOrigin}, Hello{Version: 0, Mode: HelloModeOrigin}},
		{"coic", []byte{HelloModeCoIC}, Hello{Version: 0, Mode: HelloModeCoIC}},
		{"coic unordered", []byte{HelloModeCoIC, HelloFlagUnordered},
			Hello{Version: 0, Mode: HelloModeCoIC, Flags: HelloFlagUnordered}},
		{"origin unordered", []byte{HelloModeOrigin, HelloFlagUnordered},
			Hello{Version: 0, Mode: HelloModeOrigin, Flags: HelloFlagUnordered}},
	}
	for _, tc := range cases {
		got, err := UnmarshalHello(tc.body)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// A legacy marshal must be byte-identical to what the pre-tenant code
// wrote inline: [mode] without flags, [mode, flags] with.
func TestMarshalHelloLegacyBytes(t *testing.T) {
	b, err := Hello{Version: 0, Mode: HelloModeOrigin}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || b[0] != HelloModeOrigin {
		t.Fatalf("legacy origin marshal = %v", b)
	}
	b, err = Hello{Version: 0, Mode: HelloModeCoIC, Flags: HelloFlagUnordered}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b[0] != HelloModeCoIC || b[1] != HelloFlagUnordered {
		t.Fatalf("legacy flagged marshal = %v", b)
	}
	if _, err := (Hello{Version: 0, Tenant: "app"}).Marshal(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("legacy marshal with tenant: err = %v, want ErrBadMessage", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	cases := []Hello{
		{Version: HelloVersion, Mode: HelloModeCoIC},
		{Version: HelloVersion, Mode: HelloModeOrigin, Flags: HelloFlagUnordered},
		{Version: HelloVersion, Mode: HelloModeCoIC, Tenant: "ar-app"},
		{Version: HelloVersion, Mode: HelloModeCoIC, Flags: HelloFlagUnordered,
			Tenant: "vr-suite", Token: "s3cret-token"},
		{Version: HelloVersion, Mode: HelloModeCoIC,
			Tenant: strings.Repeat("t", 255), Token: strings.Repeat("k", 255)},
	}
	for _, h := range cases {
		body, err := h.Marshal()
		if err != nil {
			t.Fatalf("%+v: marshal: %v", h, err)
		}
		got, err := UnmarshalHello(body)
		if err != nil {
			t.Fatalf("%+v: unmarshal: %v", h, err)
		}
		if got != h {
			t.Errorf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestHelloMarshalRejectsOversize(t *testing.T) {
	if _, err := (Hello{Version: 1, Tenant: strings.Repeat("t", 256)}).Marshal(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize tenant: err = %v, want ErrBadMessage", err)
	}
	if _, err := (Hello{Version: 1, Token: strings.Repeat("k", 256)}).Marshal(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize token: err = %v, want ErrBadMessage", err)
	}
}

func TestUnmarshalHelloMalformed(t *testing.T) {
	cases := [][]byte{
		{0, 1, 0, 0, 0},           // structured framing with version 0
		{1, 1, 0},                 // too short for a structured hello
		{1, 1, 0, 0},              // missing token length
		{1, 1, 0, 9, 'a', 0},      // tenant length overruns the body
		{1, 1, 0, 1, 'a', 5},      // token length overruns the body
		{1, 1, 0, 0, 0, 'x'},      // trailing garbage past the token
		{1, 1, 0, 1, 'a', 0, 'x'}, // trailing garbage, nonempty tenant
	}
	for _, body := range cases {
		if _, err := UnmarshalHello(body); !errors.Is(err, ErrBadMessage) {
			t.Errorf("body %v: err = %v, want ErrBadMessage", body, err)
		}
	}
}
