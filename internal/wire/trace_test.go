package wire

import (
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
)

// TestTraceTrailerRoundTrip covers the traced (17-byte) trailer form on
// all three request bodies: class, deadline and trace ID survive a round
// trip, and PeekQoS/PeekTrace read them without decoding.
func TestTraceTrailerRoundTrip(t *testing.T) {
	const deadline = int64(1234567890)
	const trace = uint64(0xfeedface12345678)
	desc := feature.NewVector([]float32{1, 2})
	cases := []struct {
		name string
		t    MsgType
		body func() ([]byte, error)
		get  func([]byte) (QoS, int64, uint64, error)
	}{
		{"exec", MsgExec,
			func() ([]byte, error) {
				return ExecRequest{Task: TaskRecognize, Desc: desc, Payload: []byte("img"),
					QoS: QoSInteractive, Deadline: deadline, TraceID: trace}.Marshal()
			},
			func(b []byte) (QoS, int64, uint64, error) {
				e, err := UnmarshalExecRequest(b)
				return e.QoS, e.Deadline, e.TraceID, err
			}},
		{"model", MsgModelFetch,
			func() ([]byte, error) {
				return ModelFetch{ModelID: "m1", Format: FormatCMF,
					QoS: QoSInteractive, Deadline: deadline, TraceID: trace}.Marshal()
			},
			func(b []byte) (QoS, int64, uint64, error) {
				m, err := UnmarshalModelFetch(b)
				return m.QoS, m.Deadline, m.TraceID, err
			}},
		{"pano", MsgPanoFetch,
			func() ([]byte, error) {
				return PanoFetch{VideoID: "v1", FrameIndex: 7,
					QoS: QoSInteractive, Deadline: deadline, TraceID: trace}.Marshal()
			},
			func(b []byte) (QoS, int64, uint64, error) {
				p, err := UnmarshalPanoFetch(b)
				return p.QoS, p.Deadline, p.TraceID, err
			}},
	}
	for _, tc := range cases {
		body, err := tc.body()
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		q, d, tr, err := tc.get(body)
		if err != nil || q != QoSInteractive || d != deadline || tr != trace {
			t.Fatalf("%s: round trip = %v,%d,%x (%v)", tc.name, q, d, tr, err)
		}
		if pq, pd := PeekQoS(tc.t, body); pq != QoSInteractive || pd != deadline {
			t.Fatalf("%s: PeekQoS = %v, %d", tc.name, pq, pd)
		}
		if pt := PeekTrace(tc.t, body); pt != trace {
			t.Fatalf("%s: PeekTrace = %x, want %x", tc.name, pt, trace)
		}
	}
}

// TestTraceTrailerBackwardCompatible proves a zero trace keeps the short
// (or absent) trailer form on the wire, and that short-form and legacy
// bodies read a zero trace.
func TestTraceTrailerBackwardCompatible(t *testing.T) {
	// Zero trace + zero QoS: no trailer at all.
	plain, err := PanoFetch{VideoID: "v", FrameIndex: 1}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plain); got != 6+1 {
		t.Fatalf("zero-valued pano body = %d bytes, want pre-QoS layout", got)
	}
	if PeekTrace(MsgPanoFetch, plain) != 0 {
		t.Fatal("PeekTrace on legacy body should read 0")
	}

	// Zero trace + QoS set: 9-byte form, so pre-trace servers still parse it.
	short, err := PanoFetch{VideoID: "v", FrameIndex: 1, QoS: QoSInteractive}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(short); got != 6+1+qosTrailerLen {
		t.Fatalf("traced-capable body without trace = %d bytes, want short trailer", got)
	}
	if PeekTrace(MsgPanoFetch, short) != 0 {
		t.Fatal("PeekTrace on short trailer should read 0")
	}

	// Trace without QoS/deadline still forces the long form and reads back.
	traced, err := PanoFetch{VideoID: "v", FrameIndex: 1, TraceID: 42}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(traced); got != 6+1+traceTrailerLen {
		t.Fatalf("traced body = %d bytes, want long trailer", got)
	}
	p, err := UnmarshalPanoFetch(traced)
	if err != nil || p.TraceID != 42 || p.QoS != QoSBestEffort {
		t.Fatalf("traced round trip = %+v (%v)", p, err)
	}

	// Garbage trailer lengths are rejected, not misread.
	if _, _, _, err := splitQoSTrailer(make([]byte, 13)); err == nil {
		t.Fatal("13-byte trailer should be rejected")
	}
	// PeekTrace on non-request frames is inert.
	if PeekTrace(MsgHello, []byte{1, 0, 0}) != 0 {
		t.Fatal("PeekTrace(hello) should read 0")
	}
}
