package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Shared-scene bodies. A scene is an edge-hosted room: members join by
// name, publish per-key values into a shared document, and the edge fans
// every applied write back out to all members as MsgSceneEvent pushes.
// The document is CRDT-lite — per-key last-writer-wins ordered by a
// monotonic sequence number the edge assigns at publish time — so
// event replays and reorders are safe to apply on any mirror.
//
// The request frames (join, publish, leave) carry the standard QoS/trace
// trailer and flow through the scheduler like any other request. The
// pushed MsgSceneEvent reuses the traced trailer form so clients can log
// the originating publish's trace ID without decoding the payload.

// SceneJoin asks the edge to add this connection to a named scene. The
// reply is a SceneSnapshot of the scene document at join time; every
// write after the snapshot arrives as a MsgSceneEvent push.
type SceneJoin struct {
	Scene    string
	QoS      QoS
	Deadline int64
	TraceID  uint64
}

// Marshal encodes the body: sceneLen u16 | scene | trailer.
func (s SceneJoin) Marshal() ([]byte, error) {
	return marshalSceneName(s.Scene, s.QoS, s.Deadline, s.TraceID)
}

// UnmarshalSceneJoin decodes a SceneJoin body.
func UnmarshalSceneJoin(body []byte) (SceneJoin, error) {
	name, qos, deadline, trace, err := unmarshalSceneName(body, "scene-join")
	if err != nil {
		return SceneJoin{}, err
	}
	return SceneJoin{Scene: name, QoS: qos, Deadline: deadline, TraceID: trace}, nil
}

// SceneLeave removes this connection from a scene it joined. The reply
// is an empty echo; events stop once the leave is applied (pushes
// already queued on the connection may still drain after it).
type SceneLeave struct {
	Scene    string
	QoS      QoS
	Deadline int64
	TraceID  uint64
}

// Marshal encodes the body (same layout as SceneJoin).
func (s SceneLeave) Marshal() ([]byte, error) {
	return marshalSceneName(s.Scene, s.QoS, s.Deadline, s.TraceID)
}

// UnmarshalSceneLeave decodes a SceneLeave body.
func UnmarshalSceneLeave(body []byte) (SceneLeave, error) {
	name, qos, deadline, trace, err := unmarshalSceneName(body, "scene-leave")
	if err != nil {
		return SceneLeave{}, err
	}
	return SceneLeave{Scene: name, QoS: qos, Deadline: deadline, TraceID: trace}, nil
}

func marshalSceneName(name string, qos QoS, deadline int64, trace uint64) ([]byte, error) {
	if len(name) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scene name too long", ErrBadMessage)
	}
	out := make([]byte, 0, 2+len(name)+traceTrailerLen)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
	out = append(out, name...)
	return appendQoSTrailer(out, qos, deadline, trace), nil
}

func unmarshalSceneName(body []byte, what string) (string, QoS, int64, uint64, error) {
	if len(body) < 2 {
		return "", 0, 0, 0, fmt.Errorf("%w: %s too short", ErrBadMessage, what)
	}
	end := 2 + int(binary.LittleEndian.Uint16(body[0:]))
	if end > len(body) {
		return "", 0, 0, 0, fmt.Errorf("%w: %s scene name length", ErrBadMessage, what)
	}
	qos, deadline, trace, err := splitQoSTrailer(body[end:])
	if err != nil {
		return "", 0, 0, 0, err
	}
	return string(body[2:end]), qos, deadline, trace, nil
}

// ScenePublish writes one key of the scene document. The edge applies it
// last-writer-wins (assigning the next scene sequence number), fans a
// SceneEvent out to every member, and replies with a ScenePublishAck.
type ScenePublish struct {
	Scene    string
	Key      string
	Value    []byte
	QoS      QoS
	Deadline int64
	TraceID  uint64
}

// Marshal encodes the body:
//
//	sceneLen u16 | scene | keyLen u16 | key | valueLen u32 | value | trailer
func (s ScenePublish) Marshal() ([]byte, error) {
	if len(s.Scene) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scene name too long", ErrBadMessage)
	}
	if len(s.Key) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scene key too long", ErrBadMessage)
	}
	out := make([]byte, 0, 2+len(s.Scene)+2+len(s.Key)+4+len(s.Value)+traceTrailerLen)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Scene)))
	out = append(out, s.Scene...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Key)))
	out = append(out, s.Key...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Value)))
	out = append(out, s.Value...)
	return appendQoSTrailer(out, s.QoS, s.Deadline, s.TraceID), nil
}

// UnmarshalScenePublish decodes a ScenePublish body.
func UnmarshalScenePublish(body []byte) (ScenePublish, error) {
	scene, key, value, end, err := splitSceneKeyValue(body, "scene-publish")
	if err != nil {
		return ScenePublish{}, err
	}
	qos, deadline, trace, err := splitQoSTrailer(body[end:])
	if err != nil {
		return ScenePublish{}, err
	}
	return ScenePublish{Scene: scene, Key: key, Value: value, QoS: qos, Deadline: deadline, TraceID: trace}, nil
}

// ScenePublishAck answers a ScenePublish: the sequence number the write
// was assigned and the scene document version after applying it (for
// this single-writer-ordered document the two coincide; both are kept on
// the wire so the ack stays meaningful if versioning ever diverges).
type ScenePublishAck struct {
	Seq     uint64
	Version uint64
}

// Marshal encodes the body: seq u64 | version u64.
func (a ScenePublishAck) Marshal() ([]byte, error) {
	out := make([]byte, 0, 16)
	out = binary.LittleEndian.AppendUint64(out, a.Seq)
	return binary.LittleEndian.AppendUint64(out, a.Version), nil
}

// UnmarshalScenePublishAck decodes a ScenePublishAck body.
func UnmarshalScenePublishAck(body []byte) (ScenePublishAck, error) {
	if len(body) != 16 {
		return ScenePublishAck{}, fmt.Errorf("%w: scene-publish ack length %d", ErrBadMessage, len(body))
	}
	return ScenePublishAck{
		Seq:     binary.LittleEndian.Uint64(body[0:]),
		Version: binary.LittleEndian.Uint64(body[8:]),
	}, nil
}

// SceneEvent is one applied write, pushed by the edge to every scene
// member (including the publisher, so one code path converges every
// mirror). Seq orders the write: a mirror applies the event only when
// Seq exceeds the key's current sequence, which makes replays and
// reorders harmless. Version is the scene document version after this
// write. The publisher's trace ID rides the traced trailer.
type SceneEvent struct {
	Scene   string
	Key     string
	Value   []byte
	Seq     uint64
	Version uint64
	QoS     QoS
	TraceID uint64
}

// Marshal encodes the body:
//
//	sceneLen u16 | scene | keyLen u16 | key | valueLen u32 | value |
//	seq u64 | version u64 | trailer
func (e SceneEvent) Marshal() ([]byte, error) {
	if len(e.Scene) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scene name too long", ErrBadMessage)
	}
	if len(e.Key) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scene key too long", ErrBadMessage)
	}
	out := make([]byte, 0, 2+len(e.Scene)+2+len(e.Key)+4+len(e.Value)+16+traceTrailerLen)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Scene)))
	out = append(out, e.Scene...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Key)))
	out = append(out, e.Key...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Value)))
	out = append(out, e.Value...)
	out = binary.LittleEndian.AppendUint64(out, e.Seq)
	out = binary.LittleEndian.AppendUint64(out, e.Version)
	return appendQoSTrailer(out, e.QoS, 0, e.TraceID), nil
}

// UnmarshalSceneEvent decodes a SceneEvent body.
func UnmarshalSceneEvent(body []byte) (SceneEvent, error) {
	scene, key, value, end, err := splitSceneKeyValue(body, "scene-event")
	if err != nil {
		return SceneEvent{}, err
	}
	if end+16 > len(body) {
		return SceneEvent{}, fmt.Errorf("%w: scene-event too short", ErrBadMessage)
	}
	qos, _, trace, err := splitQoSTrailer(body[end+16:])
	if err != nil {
		return SceneEvent{}, err
	}
	return SceneEvent{
		Scene:   scene,
		Key:     key,
		Value:   value,
		Seq:     binary.LittleEndian.Uint64(body[end:]),
		Version: binary.LittleEndian.Uint64(body[end+8:]),
		QoS:     qos,
		TraceID: trace,
	}, nil
}

// splitSceneKeyValue decodes the shared scene|key|value prefix of
// ScenePublish and SceneEvent bodies, returning the offset past the
// value blob.
func splitSceneKeyValue(body []byte, what string) (scene, key string, value []byte, end int, err error) {
	if len(body) < 8 {
		return "", "", nil, 0, fmt.Errorf("%w: %s too short", ErrBadMessage, what)
	}
	so := 2 + int(binary.LittleEndian.Uint16(body[0:]))
	if so+2 > len(body) {
		return "", "", nil, 0, fmt.Errorf("%w: %s scene name overruns", ErrBadMessage, what)
	}
	ko := so + 2 + int(binary.LittleEndian.Uint16(body[so:]))
	if ko+4 > len(body) {
		return "", "", nil, 0, fmt.Errorf("%w: %s key overruns", ErrBadMessage, what)
	}
	end = ko + 4 + int(binary.LittleEndian.Uint32(body[ko:]))
	if end > len(body) {
		return "", "", nil, 0, fmt.Errorf("%w: %s value length", ErrBadMessage, what)
	}
	return string(body[2:so]), string(body[so+2 : ko]), append([]byte(nil), body[ko+4:end]...), end, nil
}

// SceneEntry is one key of a snapshotted scene document.
type SceneEntry struct {
	Key   string
	Value []byte
	Seq   uint64
}

// SceneSnapshot is the reply to a SceneJoin: the whole scene document at
// the instant the member was added. The member seeds its mirror from the
// entries and then applies pushed events LWW — because both paths compare
// sequence numbers, an event racing past the snapshot is harmless in
// either order.
type SceneSnapshot struct {
	Scene   string
	Version uint64
	Entries []SceneEntry
}

// Marshal encodes the body:
//
//	sceneLen u16 | scene | version u64 | count u32 |
//	count x (keyLen u16 | key | valueLen u32 | value | seq u64)
func (s SceneSnapshot) Marshal() ([]byte, error) {
	if len(s.Scene) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scene name too long", ErrBadMessage)
	}
	out := make([]byte, 0, 2+len(s.Scene)+8+4)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Scene)))
	out = append(out, s.Scene...)
	out = binary.LittleEndian.AppendUint64(out, s.Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Entries)))
	for _, e := range s.Entries {
		if len(e.Key) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: scene key too long", ErrBadMessage)
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Key)))
		out = append(out, e.Key...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Value)))
		out = append(out, e.Value...)
		out = binary.LittleEndian.AppendUint64(out, e.Seq)
	}
	return out, nil
}

// UnmarshalSceneSnapshot decodes a SceneSnapshot body.
func UnmarshalSceneSnapshot(body []byte) (SceneSnapshot, error) {
	if len(body) < 14 {
		return SceneSnapshot{}, fmt.Errorf("%w: scene-snapshot too short", ErrBadMessage)
	}
	so := 2 + int(binary.LittleEndian.Uint16(body[0:]))
	if so+12 > len(body) {
		return SceneSnapshot{}, fmt.Errorf("%w: scene-snapshot name overruns", ErrBadMessage)
	}
	s := SceneSnapshot{
		Scene:   string(body[2:so]),
		Version: binary.LittleEndian.Uint64(body[so:]),
	}
	count := int(binary.LittleEndian.Uint32(body[so+8:]))
	off := so + 12
	for i := 0; i < count; i++ {
		if off+2 > len(body) {
			return SceneSnapshot{}, fmt.Errorf("%w: scene-snapshot entry %d truncated", ErrBadMessage, i)
		}
		ko := off + 2 + int(binary.LittleEndian.Uint16(body[off:]))
		if ko+4 > len(body) {
			return SceneSnapshot{}, fmt.Errorf("%w: scene-snapshot key overruns", ErrBadMessage)
		}
		vo := ko + 4 + int(binary.LittleEndian.Uint32(body[ko:]))
		if vo+8 > len(body) {
			return SceneSnapshot{}, fmt.Errorf("%w: scene-snapshot value overruns", ErrBadMessage)
		}
		s.Entries = append(s.Entries, SceneEntry{
			Key:   string(body[off+2 : ko]),
			Value: append([]byte(nil), body[ko+4:vo]...),
			Seq:   binary.LittleEndian.Uint64(body[vo:]),
		})
		off = vo + 8
	}
	if off != len(body) {
		return SceneSnapshot{}, fmt.Errorf("%w: scene-snapshot trailing bytes", ErrBadMessage)
	}
	return s, nil
}
