package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Membership bodies. All four membership frames (member-ping, member-ack,
// member-gossip, member-leave) carry the same body: the sender's full
// epoch-versioned member list. SWIM-style dissemination usually piggybacks
// deltas; edge fleets are small (tens of nodes), so full-state exchange
// keeps the protocol trivially convergent — any frame in either direction
// is a complete anti-entropy round. The frame type, not the body, says
// what the sender wants: ping expects an ack, gossip/leave are
// fire-and-forget announcements (the receiver still acks with its own
// view, which the sender merges for free).
//
// Member status values on the wire. Never reorder.
const (
	MemberAlive   uint8 = 0
	MemberSuspect uint8 = 1
	MemberDead    uint8 = 2
)

// MemberEntry is one row of a gossiped member list. ID is the member's
// dialable edge address — the same string the federation ring partitions
// on. Incarnation is the member's self-asserted liveness generation: only
// the member itself bumps it (to refute a suspicion), and a higher
// incarnation always supersedes a lower one regardless of status.
type MemberEntry struct {
	ID          string
	Incarnation uint64
	Status      uint8
}

// Membership is the body of every membership frame: who is speaking, the
// epoch of their view, and everything they believe about the fleet.
type Membership struct {
	From    string // sender's member ID
	Epoch   uint64 // sender's view epoch (monotonic per sender)
	Members []MemberEntry
}

// Marshal encodes the body:
//
//	fromLen u16 | from | epoch u64 | count u16
//	per member: idLen u16 | id | incarnation u64 | status u8
func (m Membership) Marshal() ([]byte, error) {
	if len(m.From) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: member id too long", ErrBadMessage)
	}
	if len(m.Members) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: member list too long", ErrBadMessage)
	}
	size := 2 + len(m.From) + 8 + 2
	for _, e := range m.Members {
		size += 2 + len(e.ID) + 8 + 1
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.From)))
	out = append(out, m.From...)
	out = binary.LittleEndian.AppendUint64(out, m.Epoch)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Members)))
	for _, e := range m.Members {
		if len(e.ID) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: member id too long", ErrBadMessage)
		}
		if e.Status > MemberDead {
			return nil, fmt.Errorf("%w: bad member status %d", ErrBadMessage, e.Status)
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.ID)))
		out = append(out, e.ID...)
		out = binary.LittleEndian.AppendUint64(out, e.Incarnation)
		out = append(out, e.Status)
	}
	return out, nil
}

// UnmarshalMembership decodes a membership body.
func UnmarshalMembership(body []byte) (Membership, error) {
	var m Membership
	off := 0
	takeString := func(what string) (string, error) {
		if off+2 > len(body) {
			return "", fmt.Errorf("%w: membership truncated at %s length", ErrBadMessage, what)
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+n > len(body) {
			return "", fmt.Errorf("%w: membership truncated in %s", ErrBadMessage, what)
		}
		s := string(body[off : off+n])
		off += n
		return s, nil
	}
	from, err := takeString("from")
	if err != nil {
		return Membership{}, err
	}
	m.From = from
	if off+8+2 > len(body) {
		return Membership{}, fmt.Errorf("%w: membership too short", ErrBadMessage)
	}
	m.Epoch = binary.LittleEndian.Uint64(body[off:])
	off += 8
	count := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	// Each entry needs at least 11 bytes; reject counts the body cannot
	// hold before allocating.
	if count*11 > len(body)-off {
		return Membership{}, fmt.Errorf("%w: membership count %d exceeds body", ErrBadMessage, count)
	}
	m.Members = make([]MemberEntry, 0, count)
	for i := 0; i < count; i++ {
		id, err := takeString("member id")
		if err != nil {
			return Membership{}, err
		}
		if off+9 > len(body) {
			return Membership{}, fmt.Errorf("%w: membership entry %d truncated", ErrBadMessage, i)
		}
		inc := binary.LittleEndian.Uint64(body[off:])
		off += 8
		status := body[off]
		off++
		if status > MemberDead {
			return Membership{}, fmt.Errorf("%w: bad member status %d", ErrBadMessage, status)
		}
		m.Members = append(m.Members, MemberEntry{ID: id, Incarnation: inc, Status: status})
	}
	if off != len(body) {
		return Membership{}, fmt.Errorf("%w: %d trailing membership bytes", ErrBadMessage, len(body)-off)
	}
	return m, nil
}
