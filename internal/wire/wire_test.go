package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"github.com/edge-immersion/coic/internal/feature"
)

func TestFrameRoundTrip(t *testing.T) {
	m := Message{Type: MsgProbe, RequestID: 42, Body: []byte("hello")}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != m.WireSize() {
		t.Fatalf("wire size %d != buffer %d", m.WireSize(), buf.Len())
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.RequestID != m.RequestID || !bytes.Equal(got.Body, m.Body) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgHello, RequestID: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Body) != 0 {
		t.Fatal("empty body grew")
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		WriteMessage(&buf, Message{Type: MsgExec, RequestID: uint64(i), Body: []byte{byte(i)}})
	}
	for i := 0; i < 10; i++ {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.RequestID != uint64(i) || m.Body[0] != byte(i) {
			t.Fatalf("frame %d out of order: %+v", i, m)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	m := Message{Type: MsgExec, RequestID: 7, Body: []byte("payload")}
	good, _ := m.Encode()

	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0xFF
		return b
	}
	if _, err := ReadMessage(bytes.NewReader(flip(0))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(flip(2))); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader(flip(HeaderSize))); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("crc: %v", err)
	}
	// Truncated body.
	if _, err := ReadMessage(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Oversized length field.
	big := append([]byte(nil), good...)
	big[12], big[13], big[14], big[15] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadMessage(bytes.NewReader(big)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversize: %v", err)
	}
}

func TestFrameTooBigOnWrite(t *testing.T) {
	if _, err := (Message{Type: MsgExec, Body: make([]byte, MaxBody+1)}).Encode(); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Message, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := ReadMessage(conn)
		if err != nil {
			return
		}
		done <- m
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := Message{Type: MsgModelFetch, RequestID: 99, Body: bytes.Repeat([]byte("m"), 100_000)}
	if err := WriteMessage(conn, want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.RequestID != 99 || !bytes.Equal(got.Body, want.Body) {
		t.Fatal("TCP round trip corrupted frame")
	}
}

// TestMsgTypeStrings iterates the canonical frame-type list instead of a
// hand-written range (which once stopped at MsgPeerInsert and silently
// skipped MsgCancel), and sweeps the whole value space to prove the list
// and the String method agree: a new frame constant with a name must be
// in AllMsgTypes, and everything in AllMsgTypes must have a name.
func TestMsgTypeStrings(t *testing.T) {
	all := AllMsgTypes()
	if len(all) == 0 {
		t.Fatal("canonical frame-type list is empty")
	}
	listed := map[MsgType]bool{}
	for _, mt := range all {
		if listed[mt] {
			t.Fatalf("type %d listed twice in AllMsgTypes", mt)
		}
		listed[mt] = true
		if s := mt.String(); s == "" || strings.HasPrefix(s, "unknown(") {
			t.Fatalf("canonical type %d has no name", mt)
		}
	}
	for v := 0; v <= 255; v++ {
		mt := MsgType(v)
		named := !strings.HasPrefix(mt.String(), "unknown(")
		if named != listed[mt] {
			t.Fatalf("type %d: named=%v but in AllMsgTypes=%v — keep the list and String in sync", v, named, listed[mt])
		}
	}
	if MsgType(200).String() != "unknown(200)" {
		t.Fatal("unknown type name")
	}
}

// TestAllMsgTypesContiguous locks the wire values: the canonical list
// must cover 1..len with no holes, so "never reorder" is testable.
func TestAllMsgTypesContiguous(t *testing.T) {
	for i, mt := range AllMsgTypes() {
		if int(mt) != i+1 {
			t.Fatalf("AllMsgTypes[%d] = %d, want %d (contiguous wire values)", i, mt, i+1)
		}
	}
}

func TestProbeRequestRoundTrip(t *testing.T) {
	for _, desc := range []feature.Descriptor{
		feature.NewVector([]float32{0.1, 0.9, -0.3}),
		feature.NewHash([]byte("model-7")),
	} {
		p := ProbeRequest{Task: TaskRecognize, Desc: desc}
		body, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalProbeRequest(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.Task != p.Task || got.Desc.Kind != desc.Kind || got.Desc.Key() != desc.Key() {
			t.Fatalf("round trip: %+v", got)
		}
	}
}

func TestProbeReplyRoundTrip(t *testing.T) {
	p := ProbeReply{Outcome: ProbeSimilar, Distance: 0.042, Result: []byte("cached")}
	body, _ := p.Marshal()
	got, err := UnmarshalProbeReply(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcome != ProbeSimilar || got.Distance != 0.042 || string(got.Result) != "cached" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestExecRequestRoundTrip(t *testing.T) {
	e := ExecRequest{
		Task:    TaskRecognize,
		Desc:    feature.NewVector([]float32{1, 0}),
		Payload: bytes.Repeat([]byte("img"), 1000),
	}
	body, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalExecRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != e.Task || !bytes.Equal(got.Payload, e.Payload) || got.Desc.Key() != e.Desc.Key() {
		t.Fatal("round trip mismatch")
	}
}

func TestExecReplyRoundTrip(t *testing.T) {
	e := ExecReply{Source: SourceCloud, Result: []byte("r")}
	body, _ := e.Marshal()
	got, err := UnmarshalExecReply(body)
	if err != nil || got.Source != SourceCloud || string(got.Result) != "r" {
		t.Fatalf("%+v, %v", got, err)
	}
}

func TestModelMessagesRoundTrip(t *testing.T) {
	f := ModelFetch{ModelID: "annotation/dragon", Format: FormatCMF}
	body, _ := f.Marshal()
	gf, err := UnmarshalModelFetch(body)
	if err != nil || gf != f {
		t.Fatalf("%+v, %v", gf, err)
	}
	r := ModelReply{Format: FormatOBJX, Source: SourceEdge, Data: []byte("obj data")}
	body, _ = r.Marshal()
	gr, err := UnmarshalModelReply(body)
	if err != nil || gr.Format != r.Format || gr.Source != r.Source || !bytes.Equal(gr.Data, r.Data) {
		t.Fatalf("%+v, %v", gr, err)
	}
}

func TestPanoMessagesRoundTrip(t *testing.T) {
	f := PanoFetch{VideoID: "vr/rollercoaster", FrameIndex: 1234}
	body, _ := f.Marshal()
	gf, err := UnmarshalPanoFetch(body)
	if err != nil || gf != f {
		t.Fatalf("%+v, %v", gf, err)
	}
	r := PanoReply{Source: SourceEdge, Data: []byte{1, 2, 3}}
	body, _ = r.Marshal()
	gr, err := UnmarshalPanoReply(body)
	if err != nil || gr.Source != r.Source || !bytes.Equal(gr.Data, r.Data) {
		t.Fatalf("%+v, %v", gr, err)
	}
}

func TestErrorReplyRoundTrip(t *testing.T) {
	e := ErrorReply{Code: CodeUnknownModel, Msg: "no such model"}
	body, _ := e.Marshal()
	got, err := UnmarshalErrorReply(body)
	if err != nil || got != e {
		t.Fatalf("%+v, %v", got, err)
	}
}

func TestRecognitionResultRoundTrip(t *testing.T) {
	r := RecognitionResult{
		ClassIndex: 3, Label: "stop-sign", Confidence: 0.93,
		AnnotationModelID: "annotation/stop-sign",
	}
	body, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalRecognitionResult(body)
	if err != nil || got != r {
		t.Fatalf("%+v, %v", got, err)
	}
}

func TestPeerLookupRoundTrip(t *testing.T) {
	for _, desc := range []feature.Descriptor{
		feature.NewVector([]float32{0.4, -0.2, 0.7}),
		feature.NewHash([]byte("model-3")),
	} {
		p := PeerLookup{Task: TaskRender, Desc: desc}
		body, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPeerLookup(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.Task != p.Task || got.Desc.Kind != desc.Kind || got.Desc.Key() != desc.Key() {
			t.Fatalf("round trip: %+v", got)
		}
	}
}

func TestPeerReplyRoundTrip(t *testing.T) {
	p := PeerReply{Outcome: ProbeExact, Distance: 0.011, Result: []byte("peer-cached")}
	body, _ := p.Marshal()
	got, err := UnmarshalPeerReply(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcome != ProbeExact || got.Distance != 0.011 || string(got.Result) != "peer-cached" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestPeerInsertRoundTrip(t *testing.T) {
	for _, desc := range []feature.Descriptor{
		feature.NewVector([]float32{0.3, 0.1, -0.8}),
		feature.NewHash([]byte("pano:video-0:7")),
	} {
		p := PeerInsert{Desc: desc, Cost: 123.5, Value: []byte("published")}
		body, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPeerInsert(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != p.Cost || string(got.Value) != "published" ||
			got.Desc.Kind != desc.Kind || got.Desc.Key() != desc.Key() {
			t.Fatalf("round trip: %+v", got)
		}
	}
}

func TestBodyDecodersRejectGarbage(t *testing.T) {
	decoders := map[string]func([]byte) error{
		"probe":       func(b []byte) error { _, err := UnmarshalProbeRequest(b); return err },
		"probe-reply": func(b []byte) error { _, err := UnmarshalProbeReply(b); return err },
		"peer-lookup": func(b []byte) error { _, err := UnmarshalPeerLookup(b); return err },
		"peer-reply":  func(b []byte) error { _, err := UnmarshalPeerReply(b); return err },
		"peer-insert": func(b []byte) error { _, err := UnmarshalPeerInsert(b); return err },
		"exec":        func(b []byte) error { _, err := UnmarshalExecRequest(b); return err },
		"exec-reply":  func(b []byte) error { _, err := UnmarshalExecReply(b); return err },
		"model-fetch": func(b []byte) error { _, err := UnmarshalModelFetch(b); return err },
		"model-reply": func(b []byte) error { _, err := UnmarshalModelReply(b); return err },
		"pano-fetch":  func(b []byte) error { _, err := UnmarshalPanoFetch(b); return err },
		"pano-reply":  func(b []byte) error { _, err := UnmarshalPanoReply(b); return err },
		"error":       func(b []byte) error { _, err := UnmarshalErrorReply(b); return err },
		"recognition": func(b []byte) error { _, err := UnmarshalRecognitionResult(b); return err },
		"scene-join":  func(b []byte) error { _, err := UnmarshalSceneJoin(b); return err },
		"scene-leave": func(b []byte) error { _, err := UnmarshalSceneLeave(b); return err },
		"scene-publish": func(b []byte) error {
			_, err := UnmarshalScenePublish(b)
			return err
		},
		"scene-publish-ack": func(b []byte) error {
			_, err := UnmarshalScenePublishAck(b)
			return err
		},
		"scene-event":    func(b []byte) error { _, err := UnmarshalSceneEvent(b); return err },
		"scene-snapshot": func(b []byte) error { _, err := UnmarshalSceneSnapshot(b); return err },
		"membership":     func(b []byte) error { _, err := UnmarshalMembership(b); return err },
	}
	for name, dec := range decoders {
		for _, b := range [][]byte{nil, {}, {1}, {1, 2, 3}, bytes.Repeat([]byte{0xFF}, 9)} {
			if err := dec(b); err == nil {
				t.Errorf("%s: accepted %v", name, b)
			}
		}
	}
}

func TestExecRequestFuzzRoundTrip(t *testing.T) {
	f := func(payload []byte, vec []float32) bool {
		for i, v := range vec {
			if v != v || v > 1e30 || v < -1e30 { // NaN/huge guard
				vec[i] = 0.1
			}
		}
		if len(vec) == 0 {
			vec = []float32{1}
		}
		e := ExecRequest{Task: TaskPano, Desc: feature.NewVector(vec), Payload: payload}
		body, err := e.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalExecRequest(body)
		return err == nil && bytes.Equal(got.Payload, payload) && got.Desc.Key() == e.Desc.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameFuzzNeverPanics(t *testing.T) {
	// Arbitrary bytes fed to ReadMessage must error or succeed, never
	// panic or over-allocate.
	f := func(data []byte) bool {
		_, _ = ReadMessage(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRequestRoundTrip(t *testing.T) {
	body, err := (CancelRequest{TargetID: 0xDEADBEEFCAFE}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCancelRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.TargetID != 0xDEADBEEFCAFE {
		t.Fatalf("target id %x", got.TargetID)
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, make([]byte, 9)} {
		if _, err := UnmarshalCancelRequest(bad); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("body %v accepted (err=%v)", bad, err)
		}
	}
}

func TestCancelMsgTypeString(t *testing.T) {
	if MsgCancel.String() != "cancel" {
		t.Fatal(MsgCancel.String())
	}
}

// TestQoSTrailerRoundTrip covers the scheduling trailer on all three
// request bodies: class and deadline survive a round trip, and PeekQoS
// reads them without a full decode.
func TestQoSTrailerRoundTrip(t *testing.T) {
	const deadline = int64(1_700_000_123_456_789)
	cases := []struct {
		name string
		t    MsgType
		body func() ([]byte, error)
		get  func([]byte) (QoS, int64, error)
	}{
		{"exec", MsgExec,
			func() ([]byte, error) {
				return ExecRequest{Task: TaskRecognize, Desc: feature.NewVector([]float32{1, 0}),
					Payload: []byte("img"), QoS: QoSInteractive, Deadline: deadline}.Marshal()
			},
			func(b []byte) (QoS, int64, error) {
				e, err := UnmarshalExecRequest(b)
				return e.QoS, e.Deadline, err
			}},
		{"model-fetch", MsgModelFetch,
			func() ([]byte, error) {
				return ModelFetch{ModelID: "scene/1073kb", Format: FormatCMF,
					QoS: QoSInteractive, Deadline: deadline}.Marshal()
			},
			func(b []byte) (QoS, int64, error) {
				m, err := UnmarshalModelFetch(b)
				return m.QoS, m.Deadline, err
			}},
		{"pano-fetch", MsgPanoFetch,
			func() ([]byte, error) {
				return PanoFetch{VideoID: "vr/coaster", FrameIndex: 7,
					QoS: QoSInteractive, Deadline: deadline}.Marshal()
			},
			func(b []byte) (QoS, int64, error) {
				p, err := UnmarshalPanoFetch(b)
				return p.QoS, p.Deadline, err
			}},
	}
	for _, tc := range cases {
		body, err := tc.body()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		q, d, err := tc.get(body)
		if err != nil || q != QoSInteractive || d != deadline {
			t.Fatalf("%s: decoded qos=%v deadline=%d err=%v", tc.name, q, d, err)
		}
		if pq, pd := PeekQoS(tc.t, body); pq != QoSInteractive || pd != deadline {
			t.Fatalf("%s: PeekQoS = %v, %d", tc.name, pq, pd)
		}
	}
}

// TestQoSTrailerBackwardCompatible proves the default class encodes to
// the pre-QoS layout (old servers keep accepting it) and that pre-QoS
// bodies decode with best-effort defaults (old clients keep working).
func TestQoSTrailerBackwardCompatible(t *testing.T) {
	plain, err := PanoFetch{VideoID: "v", FrameIndex: 1}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + 2 + 1; len(plain) != want {
		t.Fatalf("default-class body grew a trailer: %d bytes, want %d", len(plain), want)
	}
	got, err := UnmarshalPanoFetch(plain)
	if err != nil || got.QoS != QoSBestEffort || got.Deadline != 0 {
		t.Fatalf("legacy body decoded as %+v, %v", got, err)
	}
	if q, d := PeekQoS(MsgPanoFetch, plain); q != QoSBestEffort || d != 0 {
		t.Fatalf("PeekQoS on legacy body = %v, %d", q, d)
	}
	// A trailer-bearing body must be longer by exactly the trailer.
	tagged, err := PanoFetch{VideoID: "v", FrameIndex: 1, QoS: QoSInteractive}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != len(plain)+9 {
		t.Fatalf("trailer size = %d, want 9", len(tagged)-len(plain))
	}
	// Garbage between body and trailer boundary is rejected, not misread.
	if _, err := UnmarshalPanoFetch(append(plain, 0xFF)); err == nil {
		t.Fatal("partial trailer accepted")
	}
	// PeekQoS on non-request frames is inert.
	if q, d := PeekQoS(MsgHello, []byte{1}); q != QoSBestEffort || d != 0 {
		t.Fatalf("PeekQoS(hello) = %v, %d", q, d)
	}
}
