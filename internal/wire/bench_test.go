package wire

import (
	"bytes"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
)

// BenchmarkFrameRoundTrip measures framing + parsing a 64KB message (a
// small camera frame), the per-request protocol overhead.
func BenchmarkFrameRoundTrip(b *testing.B) {
	m := Message{Type: MsgExec, RequestID: 1, Body: make([]byte, 64<<10)}
	b.SetBytes(int64(m.WireSize()))
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecRequestMarshal measures the typed body codec with a vector
// descriptor attached.
func BenchmarkExecRequestMarshal(b *testing.B) {
	vec := make([]float32, 64)
	for i := range vec {
		vec[i] = float32(i) / 64
	}
	req := ExecRequest{Task: TaskRecognize, Desc: feature.NewVector(vec), Payload: make([]byte, 32<<10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := req.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalExecRequest(body); err != nil {
			b.Fatal(err)
		}
	}
}
