package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol constants.
const (
	Magic      = uint16(0x4943)
	Version    = 1
	HeaderSize = 2 + 1 + 1 + 8 + 4 + 4
	// MaxBody bounds a frame body; a 15 MB model plus headroom. Frames
	// beyond it are rejected before allocation so a corrupt length field
	// cannot OOM the edge.
	MaxBody = 64 << 20
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types. Values are on the wire; never reorder.
const (
	MsgProbe      MsgType = 1  // client->edge: descriptor lookup
	MsgProbeReply MsgType = 2  // edge->client: hit/miss (+result on hit)
	MsgExec       MsgType = 3  // client->edge->cloud: execute IC task
	MsgExecReply  MsgType = 4  // cloud->edge->client: task result
	MsgModelFetch MsgType = 5  // fetch a 3D model
	MsgModelReply MsgType = 6  // model bytes
	MsgPanoFetch  MsgType = 7  // fetch a panoramic frame
	MsgPanoReply  MsgType = 8  // panorama bytes
	MsgError      MsgType = 9  // error reply
	MsgHello      MsgType = 10 // connection preamble (role announcement)

	// Edge federation (edge<->edge). Peer lookups are local-only at the
	// receiving edge: a peer never re-forwards to its own peers or to the
	// cloud, so federated lookups cannot loop or amplify.
	MsgPeerLookup MsgType = 11 // edge->edge: probe a peer's cache
	MsgPeerReply  MsgType = 12 // edge->edge: probe answer (+result on hit)
	MsgPeerInsert MsgType = 13 // edge->edge: publish a result to the key's home edge

	// MsgCancel aborts an in-flight request on the same connection. The
	// body names the target RequestID; the frame's own RequestID is the
	// cancel's identity and is echoed back as an ack (like MsgHello), so
	// the cancel keeps its place in the connection's reply order. The
	// cancelled request still produces its own reply — MsgError with
	// CodeCanceled when the cancel landed in time, or its normal result if
	// it had already completed. Client->edge aborts a served request;
	// edge->cloud aborts a forwarded fetch whose last coalesced waiter
	// departed.
	MsgCancel MsgType = 14

	// Shared scenes (client<->edge). A scene is an edge-hosted room whose
	// members mirror one versioned per-key document; MsgSceneEvent is the
	// protocol's only server-initiated frame, pushed by the edge to every
	// member when any member publishes. Pushes are delivered only on
	// connections that negotiated HelloFlagUnordered — positional clients
	// (and every version-0 hello) count replies by arrival order and never
	// receive them.
	MsgSceneJoin    MsgType = 15 // client->edge: join a named scene (reply: snapshot)
	MsgScenePublish MsgType = 16 // client->edge: LWW write into the scene document (reply: ack)
	MsgSceneEvent   MsgType = 17 // edge->client: server-push scene delta fan-out
	MsgSceneLeave   MsgType = 18 // client->edge: leave the scene (reply: echo)

	// Federation membership (edge<->edge). SWIM-lite gossip: every frame
	// carries the sender's full epoch-versioned member list (Membership),
	// and every recipient merges it and answers member-ack with its own,
	// so any exchange is bidirectional anti-entropy. Like the peer frames,
	// membership frames are local-only — a recipient never re-forwards
	// them — and carry no QoS trailer.
	MsgMemberPing   MsgType = 19 // edge->edge: liveness probe + state exchange
	MsgMemberAck    MsgType = 20 // edge->edge: ping/gossip/leave answer with own state
	MsgMemberGossip MsgType = 21 // edge->edge: unsolicited state push (join announcement)
	MsgMemberLeave  MsgType = 22 // edge->edge: graceful departure (sender marked dead)
)

// HelloFlagUnordered, carried in Hello.Flags (the second body byte of a
// legacy version-0 hello), asks the server to write replies in
// completion order instead of arrival order. Only clients that match
// replies to requests by RequestID (the demultiplexed streaming client,
// the edge's upstream mux) may set it; positional clients rely on
// arrival order. The flag is honoured only on a connection's first
// frame — a later mode-switch hello cannot strand replies parked in the
// reorder buffer.
const HelloFlagUnordered uint8 = 1 << 0

// AllMsgTypes is the canonical list of every protocol frame type, in wire
// order. Tests iterate it so a new frame cannot ship without a String
// name and round-trip coverage; keep it in sync with the constants above
// (the wire tests cross-check it against the String method).
func AllMsgTypes() []MsgType {
	return []MsgType{
		MsgProbe, MsgProbeReply, MsgExec, MsgExecReply,
		MsgModelFetch, MsgModelReply, MsgPanoFetch, MsgPanoReply,
		MsgError, MsgHello, MsgPeerLookup, MsgPeerReply, MsgPeerInsert,
		MsgCancel, MsgSceneJoin, MsgScenePublish, MsgSceneEvent,
		MsgSceneLeave, MsgMemberPing, MsgMemberAck, MsgMemberGossip,
		MsgMemberLeave,
	}
}

// String names the message type for logs.
func (t MsgType) String() string {
	switch t {
	case MsgProbe:
		return "probe"
	case MsgProbeReply:
		return "probe-reply"
	case MsgExec:
		return "exec"
	case MsgExecReply:
		return "exec-reply"
	case MsgModelFetch:
		return "model-fetch"
	case MsgModelReply:
		return "model-reply"
	case MsgPanoFetch:
		return "pano-fetch"
	case MsgPanoReply:
		return "pano-reply"
	case MsgError:
		return "error"
	case MsgHello:
		return "hello"
	case MsgPeerLookup:
		return "peer-lookup"
	case MsgPeerReply:
		return "peer-reply"
	case MsgPeerInsert:
		return "peer-insert"
	case MsgCancel:
		return "cancel"
	case MsgSceneJoin:
		return "scene-join"
	case MsgScenePublish:
		return "scene-publish"
	case MsgSceneEvent:
		return "scene-event"
	case MsgSceneLeave:
		return "scene-leave"
	case MsgMemberPing:
		return "member-ping"
	case MsgMemberAck:
		return "member-ack"
	case MsgMemberGossip:
		return "member-gossip"
	case MsgMemberLeave:
		return "member-leave"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Message is one protocol frame.
type Message struct {
	Type      MsgType
	RequestID uint64
	Body      []byte
}

// WireSize reports the frame's on-the-wire size; the analytic network
// simulation charges exactly this many bytes.
func (m Message) WireSize() int { return HeaderSize + len(m.Body) }

// Framing errors.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTooBig     = errors.New("wire: frame exceeds MaxBody")
	ErrBadCRC     = errors.New("wire: body CRC mismatch")
)

// Encode renders the full frame into a fresh buffer.
func (m Message) Encode() ([]byte, error) {
	if len(m.Body) > MaxBody {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooBig, len(m.Body))
	}
	buf := make([]byte, HeaderSize+len(m.Body))
	binary.LittleEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = byte(m.Type)
	binary.LittleEndian.PutUint64(buf[4:], m.RequestID)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(m.Body)))
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(m.Body))
	copy(buf[HeaderSize:], m.Body)
	return buf, nil
}

// WriteMessage frames and writes m with a single Write call, so
// per-message shaping (netsim.Shaper) observes message granularity.
func WriteMessage(w io.Writer, m Message) error {
	buf, err := m.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads and verifies one frame. Body allocation is bounded by
// MaxBody. io.EOF is returned unwrapped when the stream ends cleanly
// between frames.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Message{}, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Message{}, fmt.Errorf("wire: short header: %w", err)
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != Magic {
		return Message{}, ErrBadMagic
	}
	if hdr[2] != Version {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, hdr[2])
	}
	m := Message{
		Type:      MsgType(hdr[3]),
		RequestID: binary.LittleEndian.Uint64(hdr[4:]),
	}
	n := binary.LittleEndian.Uint32(hdr[12:])
	if n > MaxBody {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrTooBig, n)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[16:])
	m.Body = make([]byte, n)
	if _, err := io.ReadFull(r, m.Body); err != nil {
		return Message{}, fmt.Errorf("wire: short body: %w", err)
	}
	if crc32.ChecksumIEEE(m.Body) != wantCRC {
		return Message{}, ErrBadCRC
	}
	return m, nil
}
