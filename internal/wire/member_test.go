package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestMembershipRoundTrip(t *testing.T) {
	m := Membership{
		From:  "127.0.0.1:19091",
		Epoch: 42,
		Members: []MemberEntry{
			{ID: "127.0.0.1:19091", Incarnation: 3, Status: MemberAlive},
			{ID: "127.0.0.1:19092", Incarnation: 1, Status: MemberSuspect},
			{ID: "127.0.0.1:19093", Incarnation: 7, Status: MemberDead},
		},
	}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMembership(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestMembershipEmptyListRoundTrip(t *testing.T) {
	// A brand-new node knows only itself-as-sender; an empty member list
	// must still frame (the receiver learns the sender from From).
	m := Membership{From: "edge-a", Epoch: 1}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMembership(body)
	if err != nil || got.From != "edge-a" || got.Epoch != 1 || len(got.Members) != 0 {
		t.Fatalf("%+v, %v", got, err)
	}
}

func TestMembershipRejectsBadBodies(t *testing.T) {
	good, err := Membership{
		From:    "a",
		Epoch:   9,
		Members: []MemberEntry{{ID: "b", Incarnation: 1, Status: MemberAlive}},
	}.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated header": good[:3],
		"truncated entry":  good[:len(good)-1],
		"trailing bytes":   append(append([]byte(nil), good...), 0),
	}
	// Corrupt the final status byte to an undefined value.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] = MemberDead + 1
	cases["bad status"] = bad

	for name, body := range cases {
		if _, err := UnmarshalMembership(body); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", name, err)
		}
	}

	// A count field promising more entries than the body holds must be
	// rejected before allocation.
	big := append([]byte(nil), good...)
	big[2+1+8] = 0xFF // count low byte (from "a" -> 2+1 prefix, epoch 8)
	big[2+1+8+1] = 0xFF
	if _, err := UnmarshalMembership(big); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversized count accepted: %v", err)
	}

	// Marshal refuses undefined statuses too.
	if _, err := (Membership{Members: []MemberEntry{{Status: 9}}}).Marshal(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("marshal accepted bad status: %v", err)
	}
}

func TestMemberMsgTypeStrings(t *testing.T) {
	for mt, want := range map[MsgType]string{
		MsgMemberPing:   "member-ping",
		MsgMemberAck:    "member-ack",
		MsgMemberGossip: "member-gossip",
		MsgMemberLeave:  "member-leave",
	} {
		if got := mt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mt, got, want)
		}
	}
}

// Membership frames carry no QoS trailer: PeekQoS must fall back to the
// default class and PeekTrace must report no trace regardless of body.
func TestMembershipFramesHaveNoTrailer(t *testing.T) {
	body, err := Membership{From: "a", Epoch: 1}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range []MsgType{MsgMemberPing, MsgMemberAck, MsgMemberGossip, MsgMemberLeave} {
		if q, deadline := PeekQoS(mt, body); q != QoSBestEffort || deadline != 0 {
			t.Errorf("%v: PeekQoS = %v, %d", mt, q, deadline)
		}
		if tr := PeekTrace(mt, body); tr != 0 {
			t.Errorf("%v: PeekTrace = %x", mt, tr)
		}
	}
}
