package wire

import (
	"bytes"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
)

// FuzzReadMessage feeds arbitrary bytes to the frame decoder. The
// invariants: never panic, never allocate past MaxBody, and any frame
// that decodes re-encodes to exactly the bytes the reader consumed (the
// frame format has one canonical encoding).
func FuzzReadMessage(f *testing.F) {
	joinBody, err := (SceneJoin{Scene: "gallery", QoS: QoSInteractive, TraceID: 0xAB}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	publishBody, err := (ScenePublish{Scene: "gallery", Key: "pose/a", Value: []byte{1, 2}, TraceID: 0xCD}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	eventBody, err := (SceneEvent{Scene: "gallery", Key: "pose/a", Value: []byte{1, 2}, Seq: 3, Version: 3, TraceID: 0xCD}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	leaveBody, err := (SceneLeave{Scene: "gallery"}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	memberBody, err := (Membership{
		From:  "edge-a:1",
		Epoch: 5,
		Members: []MemberEntry{
			{ID: "edge-a:1", Incarnation: 2, Status: MemberAlive},
			{ID: "edge-b:1", Incarnation: 1, Status: MemberSuspect},
			{ID: "edge-c:1", Incarnation: 4, Status: MemberDead},
		},
	}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range []Message{
		{Type: MsgHello, RequestID: 1, Body: []byte{0}},
		{Type: MsgExec, RequestID: 42, Body: []byte("payload")},
		{Type: MsgError, RequestID: 7, Body: nil},
		{Type: MsgSceneJoin, RequestID: 2, Body: joinBody},
		{Type: MsgScenePublish, RequestID: 3, Body: publishBody},
		{Type: MsgSceneEvent, RequestID: 0, Body: eventBody},
		{Type: MsgSceneLeave, RequestID: 4, Body: leaveBody},
		{Type: MsgMemberPing, RequestID: 5, Body: memberBody},
		{Type: MsgMemberAck, RequestID: 5, Body: memberBody},
		{Type: MsgMemberGossip, RequestID: 6, Body: memberBody},
		{Type: MsgMemberLeave, RequestID: 7, Body: memberBody},
	} {
		enc, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x49, 1, 3}) // magic + version, truncated header
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadMessage(r)
		if err != nil {
			return
		}
		if len(m.Body) > MaxBody {
			t.Fatalf("decoded body of %d bytes exceeds MaxBody", len(m.Body))
		}
		consumed := len(data) - r.Len()
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:consumed]) {
			t.Fatalf("re-encode diverges from the %d consumed bytes", consumed)
		}
	})
}

// FuzzExecRequestTrailer cross-checks the zero-copy trailer peekers
// against the full decoder: for any body, PeekQoS/PeekTrace must never
// panic, and when the body is a valid ExecRequest they must agree with
// UnmarshalExecRequest. Valid requests must also round-trip through
// their canonical marshalled form.
func FuzzExecRequestTrailer(f *testing.F) {
	desc := feature.NewVector([]float32{1, 0})
	for _, e := range []ExecRequest{
		{Task: TaskRecognize, Desc: desc, Payload: []byte("frame")},
		{Task: TaskRecognize, Desc: desc, Payload: []byte("frame"), QoS: QoSInteractive, Deadline: 1234567},
		{Task: TaskRender, Desc: desc, Payload: []byte("x"), QoS: QoSBestEffort, Deadline: 99, TraceID: 0xfeed},
	} {
		body, err := e.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TaskRecognize), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		qos, deadline := PeekQoS(MsgExec, body)
		trace := PeekTrace(MsgExec, body)
		req, err := UnmarshalExecRequest(body)
		if err != nil {
			return
		}
		if req.QoS != qos || req.Deadline != deadline {
			t.Fatalf("PeekQoS = (%v, %d), decoder says (%v, %d)", qos, deadline, req.QoS, req.Deadline)
		}
		if req.TraceID != trace {
			t.Fatalf("PeekTrace = %d, decoder says %d", trace, req.TraceID)
		}

		// Canonical round trip: marshal, re-decode, and the peekers must
		// agree on the canonical form too (the trailer may be re-encoded
		// shorter, never with different meaning).
		canon, err := req.Marshal()
		if err != nil {
			t.Fatalf("decoded request fails to marshal: %v", err)
		}
		req2, err := UnmarshalExecRequest(canon)
		if err != nil {
			t.Fatalf("canonical form fails to decode: %v", err)
		}
		if req2.Task != req.Task || !bytes.Equal(req2.Payload, req.Payload) ||
			req2.QoS != req.QoS || req2.Deadline != req.Deadline || req2.TraceID != req.TraceID {
			t.Fatal("round trip through canonical form changed the request")
		}
		if q2, d2 := PeekQoS(MsgExec, canon); q2 != req.QoS || d2 != req.Deadline {
			t.Fatalf("PeekQoS on canonical form = (%v, %d), want (%v, %d)", q2, d2, req.QoS, req.Deadline)
		}
		if tr2 := PeekTrace(MsgExec, canon); tr2 != req.TraceID {
			t.Fatalf("PeekTrace on canonical form = %d, want %d", tr2, req.TraceID)
		}
	})
}
