package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestSceneJoinRoundTrip(t *testing.T) {
	j := SceneJoin{Scene: "gallery/3f", QoS: QoSInteractive, Deadline: 1_700_000_000_000_000, TraceID: 0xABCD}
	body, err := j.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSceneJoin(body)
	if err != nil || got != j {
		t.Fatalf("%+v, %v", got, err)
	}
	// The trailer is peekable without a decode, like every request frame.
	if q, d := PeekQoS(MsgSceneJoin, body); q != j.QoS || d != j.Deadline {
		t.Fatalf("PeekQoS = %v, %d", q, d)
	}
	if tr := PeekTrace(MsgSceneJoin, body); tr != j.TraceID {
		t.Fatalf("PeekTrace = %x", tr)
	}
	// A trailerless join stays at the minimal layout.
	plain, _ := SceneJoin{Scene: "s"}.Marshal()
	if len(plain) != 2+1 {
		t.Fatalf("plain join grew a trailer: %d bytes", len(plain))
	}
}

func TestSceneLeaveRoundTrip(t *testing.T) {
	l := SceneLeave{Scene: "gallery/3f", TraceID: 0x77}
	body, err := l.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSceneLeave(body)
	if err != nil || got != l {
		t.Fatalf("%+v, %v", got, err)
	}
	if tr := PeekTrace(MsgSceneLeave, body); tr != l.TraceID {
		t.Fatalf("PeekTrace = %x", tr)
	}
}

func TestScenePublishRoundTrip(t *testing.T) {
	p := ScenePublish{
		Scene: "gallery", Key: "pose/alice", Value: []byte{1, 2, 3, 4},
		QoS: QoSInteractive, Deadline: 42_000_000, TraceID: 0xFEEDFACE,
	}
	body, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScenePublish(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scene != p.Scene || got.Key != p.Key || !bytes.Equal(got.Value, p.Value) ||
		got.QoS != p.QoS || got.Deadline != p.Deadline || got.TraceID != p.TraceID {
		t.Fatalf("round trip: %+v", got)
	}
	if q, d := PeekQoS(MsgScenePublish, body); q != p.QoS || d != p.Deadline {
		t.Fatalf("PeekQoS = %v, %d", q, d)
	}
	if tr := PeekTrace(MsgScenePublish, body); tr != p.TraceID {
		t.Fatalf("PeekTrace = %x", tr)
	}
	// Empty values are legal (a key can be cleared).
	empty, _ := ScenePublish{Scene: "s", Key: "k"}.Marshal()
	ge, err := UnmarshalScenePublish(empty)
	if err != nil || len(ge.Value) != 0 {
		t.Fatalf("%+v, %v", ge, err)
	}
}

func TestScenePublishAckRoundTrip(t *testing.T) {
	body, err := (ScenePublishAck{Seq: 9, Version: 9}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScenePublishAck(body)
	if err != nil || got.Seq != 9 || got.Version != 9 {
		t.Fatalf("%+v, %v", got, err)
	}
	for _, bad := range [][]byte{nil, {1}, make([]byte, 15), make([]byte, 17)} {
		if _, err := UnmarshalScenePublishAck(bad); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("body %v accepted (err=%v)", bad, err)
		}
	}
}

func TestSceneEventRoundTrip(t *testing.T) {
	e := SceneEvent{
		Scene: "gallery", Key: "anchor/door", Value: []byte("mesh-bytes"),
		Seq: 17, Version: 17, QoS: QoSInteractive, TraceID: 0xC0FFEE,
	}
	body, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSceneEvent(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scene != e.Scene || got.Key != e.Key || !bytes.Equal(got.Value, e.Value) ||
		got.Seq != e.Seq || got.Version != e.Version || got.QoS != e.QoS || got.TraceID != e.TraceID {
		t.Fatalf("round trip: %+v", got)
	}
	// Clients log pushed events by trace without decoding the payload.
	if tr := PeekTrace(MsgSceneEvent, body); tr != e.TraceID {
		t.Fatalf("PeekTrace = %x", tr)
	}
	// An untraced best-effort event encodes without a trailer and still
	// decodes (trace reads as zero).
	plain, _ := SceneEvent{Scene: "s", Key: "k", Value: []byte{9}, Seq: 1, Version: 1}.Marshal()
	gp, err := UnmarshalSceneEvent(plain)
	if err != nil || gp.TraceID != 0 || gp.Seq != 1 {
		t.Fatalf("%+v, %v", gp, err)
	}
	if tr := PeekTrace(MsgSceneEvent, plain); tr != 0 {
		t.Fatalf("PeekTrace on untraced event = %x", tr)
	}
}

func TestSceneSnapshotRoundTrip(t *testing.T) {
	s := SceneSnapshot{
		Scene:   "gallery",
		Version: 5,
		Entries: []SceneEntry{
			{Key: "pose/alice", Value: []byte{1, 2}, Seq: 3},
			{Key: "recognized/door", Value: []byte("stop-sign"), Seq: 5},
			{Key: "cleared", Value: nil, Seq: 4},
		},
	}
	body, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSceneSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scene != s.Scene || got.Version != s.Version || len(got.Entries) != len(s.Entries) {
		t.Fatalf("round trip: %+v", got)
	}
	for i, e := range s.Entries {
		g := got.Entries[i]
		if g.Key != e.Key || !bytes.Equal(g.Value, e.Value) || g.Seq != e.Seq {
			t.Fatalf("entry %d: %+v", i, g)
		}
	}
	// Empty documents snapshot and decode.
	eb, _ := SceneSnapshot{Scene: "fresh", Version: 0}.Marshal()
	ge, err := UnmarshalSceneSnapshot(eb)
	if err != nil || ge.Scene != "fresh" || len(ge.Entries) != 0 {
		t.Fatalf("%+v, %v", ge, err)
	}
	// Truncated entry lists are rejected, not misread.
	if _, err := UnmarshalSceneSnapshot(body[:len(body)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := UnmarshalSceneSnapshot(append(body, 0)); err == nil {
		t.Fatal("snapshot with trailing bytes accepted")
	}
}

func TestSceneMsgTypeStrings(t *testing.T) {
	for mt, want := range map[MsgType]string{
		MsgSceneJoin:    "scene-join",
		MsgScenePublish: "scene-publish",
		MsgSceneEvent:   "scene-event",
		MsgSceneLeave:   "scene-leave",
	} {
		if mt.String() != want {
			t.Fatalf("%d.String() = %q, want %q", mt, mt.String(), want)
		}
	}
}
