package wire

import (
	"fmt"
	"math"
)

// HelloVersion is the current structured hello version. Version 0 is the
// legacy ad-hoc form: a 0–2 byte body of [mode[, flags]] with no tenant.
const HelloVersion uint8 = 1

// Hello mode bytes (the execution mode the connection runs under). The
// values match internal/core.Mode and are on the wire; never reorder.
const (
	HelloModeOrigin uint8 = 0 // bypass the cache — the paper's baseline
	HelloModeCoIC   uint8 = 1 // full CoIC protocol
)

// Hello is the structured connection preamble carried in a MsgHello body.
// It replaces the legacy role+flags byte pair: besides the execution mode
// and connection flags it authenticates a tenant onto the connection
// (per-tenant admission quotas, fair-share scheduling and cache shares
// all key off it). An empty Tenant means the implicit "default" tenant —
// the server, not the codec, applies that mapping.
type Hello struct {
	// Version selects the encoding: 0 emits the legacy 1–2 byte form
	// (Tenant and Token must be empty), >=1 the structured form below.
	Version uint8
	Mode    uint8 // HelloModeOrigin or HelloModeCoIC
	Flags   uint8 // HelloFlagUnordered, ...
	Tenant  string
	Token   string
}

// maxHelloString bounds Tenant and Token (u8 length prefix).
const maxHelloString = math.MaxUint8

// Marshal encodes the hello body.
//
// Version >= 1 (structured):
//
//	version u8 | mode u8 | flags u8 | tenantLen u8 | tenant | tokenLen u8 | token
//
// Version 0 (legacy): [mode] when Flags is zero, [mode, flags] otherwise —
// byte-identical to what pre-tenant clients send.
func (h Hello) Marshal() ([]byte, error) {
	if h.Version == 0 {
		if h.Tenant != "" || h.Token != "" {
			return nil, fmt.Errorf("%w: legacy (version 0) hello cannot carry a tenant", ErrBadMessage)
		}
		if h.Flags != 0 {
			return []byte{h.Mode, h.Flags}, nil
		}
		return []byte{h.Mode}, nil
	}
	if len(h.Tenant) > maxHelloString {
		return nil, fmt.Errorf("%w: tenant id too long", ErrBadMessage)
	}
	if len(h.Token) > maxHelloString {
		return nil, fmt.Errorf("%w: tenant token too long", ErrBadMessage)
	}
	out := make([]byte, 0, 5+len(h.Tenant)+len(h.Token))
	out = append(out, h.Version, h.Mode, h.Flags, uint8(len(h.Tenant)))
	out = append(out, h.Tenant...)
	out = append(out, uint8(len(h.Token)))
	out = append(out, h.Token...)
	return out, nil
}

// UnmarshalHello decodes a MsgHello body, accepting both forms. Bodies of
// 0–2 bytes are the legacy version-0 preamble ([mode[, flags]]; empty
// means CoIC) — a structured hello is always >= 5 bytes, and its first
// byte (version >= 1) can never collide with a legacy length: the only
// 1-byte legacy bodies are a bare mode byte, which decode as version 0
// here, never as a truncated structured frame.
func UnmarshalHello(body []byte) (Hello, error) {
	if len(body) <= 2 {
		h := Hello{Version: 0, Mode: HelloModeCoIC}
		if len(body) >= 1 {
			h.Mode = body[0]
		}
		if len(body) == 2 {
			h.Flags = body[1]
		}
		return h, nil
	}
	if body[0] == 0 {
		return Hello{}, fmt.Errorf("%w: structured hello with version 0", ErrBadMessage)
	}
	if len(body) < 5 {
		return Hello{}, fmt.Errorf("%w: hello too short", ErrBadMessage)
	}
	h := Hello{Version: body[0], Mode: body[1], Flags: body[2]}
	tn := int(body[3])
	off := 4 + tn
	if off+1 > len(body) {
		return Hello{}, fmt.Errorf("%w: hello tenant overruns", ErrBadMessage)
	}
	h.Tenant = string(body[4:off])
	kn := int(body[off])
	if off+1+kn != len(body) {
		return Hello{}, fmt.Errorf("%w: hello token length", ErrBadMessage)
	}
	h.Token = string(body[off+1 : off+1+kn])
	return h, nil
}
