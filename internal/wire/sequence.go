package wire

import "fmt"

// Pipelined serving: a CoIC server reads many requests off one connection
// before the first reply is written, processes them on a worker pool, and
// must still write replies in arrival order — the protocol's framing has
// no out-of-order delivery, so a client that pipelines K requests reads
// exactly K replies back in the order it sent them. Each request is
// tagged with a per-connection sequence number at read time; workers
// finish in any order; the ReplyBuffer reorders completions back into the
// sequence before they touch the socket.

// SequencedMessage pairs a reply with the arrival sequence number of the
// request it answers.
type SequencedMessage struct {
	Seq uint64
	Msg Message
}

// ReplyBuffer reorders out-of-sequence replies. It is a pure data
// structure (no I/O, no locking): one writer goroutine owns it and calls
// Add with each completed reply, writing whatever ready prefix comes
// back.
type ReplyBuffer struct {
	next    uint64
	pending map[uint64]Message
}

// NewReplyBuffer expects sequences starting at start (the first request
// read off a connection is tagged 1 by convention).
func NewReplyBuffer(start uint64) *ReplyBuffer {
	return &ReplyBuffer{next: start, pending: map[uint64]Message{}}
}

// Add accepts the reply for seq and returns the in-order run of replies
// now ready to write (empty if seq is ahead of a still-outstanding one).
// Sequences must be unique and never precede the buffer's start; both
// indicate a server bug, not a peer-controlled condition, so they panic.
func (b *ReplyBuffer) Add(seq uint64, m Message) []Message {
	if seq < b.next {
		panic(fmt.Sprintf("wire: reply sequence %d already flushed (next %d)", seq, b.next))
	}
	if _, dup := b.pending[seq]; dup {
		panic(fmt.Sprintf("wire: duplicate reply sequence %d", seq))
	}
	if seq != b.next {
		b.pending[seq] = m
		return nil
	}
	ready := []Message{m}
	b.next++
	for {
		nm, ok := b.pending[b.next]
		if !ok {
			return ready
		}
		delete(b.pending, b.next)
		ready = append(ready, nm)
		b.next++
	}
}

// Pending reports how many replies are parked waiting for earlier
// sequences.
func (b *ReplyBuffer) Pending() int { return len(b.pending) }
