package wire

import "testing"

func msgN(n uint64) Message { return Message{Type: MsgExecReply, RequestID: n} }

func TestReplyBufferInOrder(t *testing.T) {
	b := NewReplyBuffer(1)
	for seq := uint64(1); seq <= 5; seq++ {
		out := b.Add(seq, msgN(seq))
		if len(out) != 1 || out[0].RequestID != seq {
			t.Fatalf("Add(%d) = %v, want exactly that reply", seq, out)
		}
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d", b.Pending())
	}
}

func TestReplyBufferReorders(t *testing.T) {
	b := NewReplyBuffer(1)
	if out := b.Add(3, msgN(3)); len(out) != 0 {
		t.Fatalf("early seq flushed: %v", out)
	}
	if out := b.Add(2, msgN(2)); len(out) != 0 {
		t.Fatalf("early seq flushed: %v", out)
	}
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Pending())
	}
	out := b.Add(1, msgN(1))
	if len(out) != 3 {
		t.Fatalf("flush = %d replies, want 3", len(out))
	}
	for i, m := range out {
		if m.RequestID != uint64(i+1) {
			t.Fatalf("flush[%d] = seq %d, want %d", i, m.RequestID, i+1)
		}
	}
	// The buffer continues past the flushed run.
	if out := b.Add(4, msgN(4)); len(out) != 1 || out[0].RequestID != 4 {
		t.Fatalf("Add(4) = %v", out)
	}
}

func TestReplyBufferPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	b := NewReplyBuffer(1)
	b.Add(1, msgN(1))
	assertPanics("stale sequence", func() { b.Add(1, msgN(1)) })
	b2 := NewReplyBuffer(1)
	b2.Add(2, msgN(2))
	assertPanics("duplicate sequence", func() { b2.Add(2, msgN(2)) })
}
