// Package wire defines the CoIC protocol: framed, CRC-protected messages
// between mobile clients, edges and the cloud — and, in a federation,
// between edges. The same encoding runs over real TCP (the cmd/ daemons)
// and is byte-counted by the analytic network simulation, so experiment
// transfer sizes are the true encoded sizes, not estimates.
//
// # Frame layout (little-endian)
//
//	magic  u16  0x4943 ("IC")
//	ver    u8
//	type   u8
//	reqID  u64
//	len    u32  body length
//	crc    u32  IEEE CRC-32 of the body
//	body   len bytes
//
// # Message catalogue
//
// Client ↔ edge ↔ cloud (the paper's Figure 1 protocol):
//
//   - MsgProbe / MsgProbeReply — descriptor-only cache probe;
//   - MsgExec / MsgExecReply — full IC task execution (recognition);
//   - MsgModelFetch / MsgModelReply — 3D model retrieval;
//   - MsgPanoFetch / MsgPanoReply — VR panorama frame retrieval;
//   - MsgError, MsgHello — failure reporting and connection preamble.
//
// Edge ↔ edge (the cache federation):
//
//   - MsgPeerLookup / MsgPeerReply — one edge probing another's cache on
//     a local miss. The receiver answers from its local cache only, never
//     re-forwarding to its own peers or the cloud, which bounds federated
//     lookups at a single hop;
//   - MsgPeerInsert — publishing a freshly computed result to the
//     descriptor's consistent-hash home edge (acknowledged with an empty
//     MsgPeerReply).
//
// docs/PROTOCOL.md documents every body layout byte by byte.
package wire
