package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/edge-immersion/coic/internal/feature"
)

// Task identifies which IC workload a request belongs to.
type Task uint8

// IC task kinds (wire values).
const (
	TaskRecognize Task = 1
	TaskRender    Task = 2
	TaskPano      Task = 3
)

// String names the task.
func (t Task) String() string {
	switch t {
	case TaskRecognize:
		return "recognize"
	case TaskRender:
		return "render"
	case TaskPano:
		return "pano"
	default:
		return fmt.Sprintf("task(%d)", uint8(t))
	}
}

// Model formats for MsgModelFetch/MsgModelReply.
const (
	FormatOBJX uint8 = 1 // text source format (cloud repository)
	FormatCMF  uint8 = 2 // binary runtime format (edge cache)
)

// QoS is a request's service class. Classes are strict priorities at the
// serving tiers: every queued interactive request is dispatched before
// any best-effort one, and within a class requests run
// earliest-deadline-first.
type QoS uint8

// Service classes (wire values). Zero is best-effort so frames from
// clients that predate the QoS trailer keep their old scheduling.
const (
	QoSBestEffort  QoS = 0
	QoSInteractive QoS = 1

	// NumQoSClasses bounds the class space; the scheduler allocates one
	// queue per class.
	NumQoSClasses = 2
)

// String names the class for logs and tables.
func (q QoS) String() string {
	switch q {
	case QoSBestEffort:
		return "best-effort"
	case QoSInteractive:
		return "interactive"
	default:
		return fmt.Sprintf("qos(%d)", uint8(q))
	}
}

// The optional scheduling trailer carried at the end of ExecRequest,
// ModelFetch and PanoFetch bodies comes in two encoded sizes:
//
//	qosTrailerLen:   class u8 | deadline u64 (unix microseconds UTC, 0 = none)
//	traceTrailerLen: class u8 | deadline u64 | trace u64
//
// The long form adds the client-minted trace ID; a request with no trace
// marshals to the short (or absent) form so pre-trace servers keep
// accepting frames from upgraded clients.
const (
	qosTrailerLen   = 9
	traceTrailerLen = 17
)

// appendQoSTrailer encodes the trailer only when it says something: a
// zero class with no deadline and no trace marshals to the pre-QoS body,
// so old servers keep accepting frames from upgraded clients that don't
// use the feature.
func appendQoSTrailer(out []byte, class QoS, deadline int64, trace uint64) []byte {
	if class == QoSBestEffort && deadline == 0 && trace == 0 {
		return out
	}
	out = append(out, byte(class))
	out = binary.LittleEndian.AppendUint64(out, uint64(deadline))
	if trace == 0 {
		return out
	}
	return binary.LittleEndian.AppendUint64(out, trace)
}

// splitQoSTrailer validates rest as either empty or exactly one trailer
// (short or traced form).
func splitQoSTrailer(rest []byte) (QoS, int64, uint64, error) {
	switch len(rest) {
	case 0:
		return QoSBestEffort, 0, 0, nil
	case qosTrailerLen:
		return QoS(rest[0]), int64(binary.LittleEndian.Uint64(rest[1:])), 0, nil
	case traceTrailerLen:
		return QoS(rest[0]), int64(binary.LittleEndian.Uint64(rest[1:])),
			binary.LittleEndian.Uint64(rest[9:]), nil
	default:
		return 0, 0, 0, fmt.Errorf("%w: trailing %d bytes are not a QoS trailer", ErrBadMessage, len(rest))
	}
}

// trailerBase finds the offset where a request body's trailer would start
// (the end of the fixed payload), or -1 when the type carries no trailer
// or the body is malformed.
func trailerBase(t MsgType, body []byte) int {
	switch t {
	case MsgExec:
		if len(body) < 5 {
			return -1
		}
		dn := int(binary.LittleEndian.Uint32(body[1:]))
		off := 5 + dn
		if off+4 > len(body) {
			return -1
		}
		return off + 4 + int(binary.LittleEndian.Uint32(body[off:]))
	case MsgModelFetch:
		if len(body) < 3 {
			return -1
		}
		return 3 + int(binary.LittleEndian.Uint16(body[1:]))
	case MsgPanoFetch:
		if len(body) < 6 {
			return -1
		}
		return 6 + int(binary.LittleEndian.Uint16(body[4:]))
	case MsgSceneJoin, MsgSceneLeave:
		if len(body) < 2 {
			return -1
		}
		return 2 + int(binary.LittleEndian.Uint16(body[0:]))
	case MsgScenePublish, MsgSceneEvent:
		if len(body) < 8 {
			return -1
		}
		so := 2 + int(binary.LittleEndian.Uint16(body[0:]))
		if so+2 > len(body) {
			return -1
		}
		ko := so + 2 + int(binary.LittleEndian.Uint16(body[so:]))
		if ko+4 > len(body) {
			return -1
		}
		end := ko + 4 + int(binary.LittleEndian.Uint32(body[ko:]))
		if t == MsgSceneEvent {
			end += 16 // seq u64 | version u64 follow the value blob
		}
		return end
	default:
		return -1
	}
}

// PeekQoS extracts the scheduling metadata — service class and absolute
// deadline in unix microseconds (0 = none) — from a request body without
// decoding the payload, so the serving tiers can order and shed queued
// work cheaply. Message types that carry no trailer, and malformed
// bodies (the dispatcher will reject them anyway), read as best-effort
// with no deadline.
func PeekQoS(t MsgType, body []byte) (QoS, int64) {
	base := trailerBase(t, body)
	if base < 0 || (base+qosTrailerLen != len(body) && base+traceTrailerLen != len(body)) {
		return QoSBestEffort, 0
	}
	return QoS(body[base]), int64(binary.LittleEndian.Uint64(body[base+1:]))
}

// PeekTrace extracts the client-minted trace ID from a request body
// without decoding the payload, for log correlation on the serving hot
// path. Requests without the traced trailer (and malformed bodies) read
// as 0.
func PeekTrace(t MsgType, body []byte) uint64 {
	base := trailerBase(t, body)
	if base < 0 || base+traceTrailerLen != len(body) {
		return 0
	}
	return binary.LittleEndian.Uint64(body[base+qosTrailerLen:])
}

// Cache outcomes carried in ProbeReply.
const (
	ProbeMiss    uint8 = 0
	ProbeExact   uint8 = 1
	ProbeSimilar uint8 = 2
)

// ErrBadMessage is wrapped by all body decode failures.
var ErrBadMessage = errors.New("wire: malformed message body")

// ProbeRequest asks the edge whether a descriptor's result is cached.
type ProbeRequest struct {
	Task Task
	Desc feature.Descriptor
}

// Marshal encodes the body.
func (p ProbeRequest) Marshal() ([]byte, error) {
	desc, err := p.Desc.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+4+len(desc))
	out = append(out, byte(p.Task))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(desc)))
	return append(out, desc...), nil
}

// UnmarshalProbeRequest decodes a ProbeRequest body.
func UnmarshalProbeRequest(body []byte) (ProbeRequest, error) {
	if len(body) < 5 {
		return ProbeRequest{}, fmt.Errorf("%w: probe too short", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(body[1:])
	if int(n) != len(body)-5 {
		return ProbeRequest{}, fmt.Errorf("%w: probe descriptor length", ErrBadMessage)
	}
	desc, err := feature.Unmarshal(body[5:])
	if err != nil {
		return ProbeRequest{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return ProbeRequest{Task: Task(body[0]), Desc: desc}, nil
}

// ProbeReply answers a probe; Result is present only on a hit.
type ProbeReply struct {
	Outcome  uint8
	Distance float64 // descriptor distance for similar hits
	Result   []byte
}

// Marshal encodes the body.
func (p ProbeReply) Marshal() ([]byte, error) {
	out := make([]byte, 0, 1+8+4+len(p.Result))
	out = append(out, p.Outcome)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Distance))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Result)))
	return append(out, p.Result...), nil
}

// UnmarshalProbeReply decodes a ProbeReply body.
func UnmarshalProbeReply(body []byte) (ProbeReply, error) {
	if len(body) < 13 {
		return ProbeReply{}, fmt.Errorf("%w: probe-reply too short", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(body[9:])
	if int(n) != len(body)-13 {
		return ProbeReply{}, fmt.Errorf("%w: probe-reply result length", ErrBadMessage)
	}
	return ProbeReply{
		Outcome:  body[0],
		Distance: math.Float64frombits(binary.LittleEndian.Uint64(body[1:])),
		Result:   append([]byte(nil), body[13:]...),
	}, nil
}

// PeerLookup is the edge-to-edge flavour of ProbeRequest: one federated
// edge asking another whether a descriptor's result is cached there. It
// is a distinct message type (not a reused MsgProbe) so the receiving
// edge knows to answer from its local cache only — never re-forwarding to
// its own peers or the cloud — which is what keeps federated lookups to a
// single hop.
type PeerLookup struct {
	Task Task
	Desc feature.Descriptor
}

// Marshal encodes the body (same layout as ProbeRequest).
func (p PeerLookup) Marshal() ([]byte, error) {
	return ProbeRequest{Task: p.Task, Desc: p.Desc}.Marshal()
}

// UnmarshalPeerLookup decodes a PeerLookup body.
func UnmarshalPeerLookup(body []byte) (PeerLookup, error) {
	pr, err := UnmarshalProbeRequest(body)
	if err != nil {
		return PeerLookup{}, err
	}
	return PeerLookup{Task: pr.Task, Desc: pr.Desc}, nil
}

// PeerReply answers a PeerLookup; Result is present only on a hit. It
// also acknowledges a PeerInsert (Outcome ProbeMiss, empty Result).
type PeerReply struct {
	Outcome  uint8   // ProbeMiss / ProbeExact / ProbeSimilar
	Distance float64 // descriptor distance for similar hits
	Result   []byte
}

// Marshal encodes the body (same layout as ProbeReply).
func (p PeerReply) Marshal() ([]byte, error) {
	return ProbeReply{Outcome: p.Outcome, Distance: p.Distance, Result: p.Result}.Marshal()
}

// UnmarshalPeerReply decodes a PeerReply body.
func UnmarshalPeerReply(body []byte) (PeerReply, error) {
	pr, err := UnmarshalProbeReply(body)
	if err != nil {
		return PeerReply{}, err
	}
	return PeerReply{Outcome: pr.Outcome, Distance: pr.Distance, Result: pr.Result}, nil
}

// PeerInsert publishes a computed result to the descriptor's home edge
// (consistent-hash owner), so any edge in the federation can later
// resolve the key in one peer hop. Cost carries the recomputation-cost
// hint for the receiving cache's eviction policy. There is deliberately
// no task field: the descriptor alone identifies the cached computation,
// and the receiver adopts it without task-level accounting.
type PeerInsert struct {
	Desc  feature.Descriptor
	Cost  float64
	Value []byte
}

// Marshal encodes the body.
func (p PeerInsert) Marshal() ([]byte, error) {
	desc, err := p.Desc.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 8+4+len(desc)+4+len(p.Value))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Cost))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(desc)))
	out = append(out, desc...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Value)))
	return append(out, p.Value...), nil
}

// UnmarshalPeerInsert decodes a PeerInsert body.
func UnmarshalPeerInsert(body []byte) (PeerInsert, error) {
	if len(body) < 12 {
		return PeerInsert{}, fmt.Errorf("%w: peer-insert too short", ErrBadMessage)
	}
	dn := binary.LittleEndian.Uint32(body[8:])
	off := 12 + int(dn)
	if off+4 > len(body) {
		return PeerInsert{}, fmt.Errorf("%w: peer-insert descriptor overruns", ErrBadMessage)
	}
	desc, err := feature.Unmarshal(body[12:off])
	if err != nil {
		return PeerInsert{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	vn := binary.LittleEndian.Uint32(body[off:])
	if int(vn) != len(body)-off-4 {
		return PeerInsert{}, fmt.Errorf("%w: peer-insert value length", ErrBadMessage)
	}
	return PeerInsert{
		Cost:  math.Float64frombits(binary.LittleEndian.Uint64(body[0:])),
		Desc:  desc,
		Value: append([]byte(nil), body[off+4:]...),
	}, nil
}

// ExecRequest carries a full IC task: the input payload plus the
// descriptor so the edge can insert the eventual result into its cache.
// QoS and Deadline ride in an optional trailer (see PeekQoS); a
// zero-valued pair encodes to the pre-QoS body layout.
type ExecRequest struct {
	Task    Task
	Desc    feature.Descriptor
	Payload []byte
	// QoS is the request's service class at the edge and cloud queues.
	QoS QoS
	// Deadline, when non-zero, is the absolute wall-clock instant (unix
	// microseconds UTC) after which the result is useless; serving tiers
	// shed the request from their queues once it passes.
	Deadline int64
	// TraceID, when non-zero, is the client-minted identifier logged by
	// every tier the request crosses (client, edge, cloud) so one slow
	// frame can be correlated across their logs. It rides the traced form
	// of the trailer; zero marshals to the short form.
	TraceID uint64
}

// Marshal encodes the body.
func (e ExecRequest) Marshal() ([]byte, error) {
	desc, err := e.Desc.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+4+len(desc)+4+len(e.Payload)+qosTrailerLen)
	out = append(out, byte(e.Task))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(desc)))
	out = append(out, desc...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Payload)))
	out = append(out, e.Payload...)
	return appendQoSTrailer(out, e.QoS, e.Deadline, e.TraceID), nil
}

// UnmarshalExecRequest decodes an ExecRequest body.
func UnmarshalExecRequest(body []byte) (ExecRequest, error) {
	if len(body) < 5 {
		return ExecRequest{}, fmt.Errorf("%w: exec too short", ErrBadMessage)
	}
	dn := binary.LittleEndian.Uint32(body[1:])
	off := 5 + int(dn)
	if off+4 > len(body) {
		return ExecRequest{}, fmt.Errorf("%w: exec descriptor overruns", ErrBadMessage)
	}
	desc, err := feature.Unmarshal(body[5:off])
	if err != nil {
		return ExecRequest{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	pn := int(binary.LittleEndian.Uint32(body[off:]))
	end := off + 4 + pn
	if pn < 0 || end > len(body) {
		return ExecRequest{}, fmt.Errorf("%w: exec payload length", ErrBadMessage)
	}
	qos, deadline, trace, err := splitQoSTrailer(body[end:])
	if err != nil {
		return ExecRequest{}, err
	}
	return ExecRequest{
		Task:     Task(body[0]),
		Desc:     desc,
		Payload:  append([]byte(nil), body[off+4:end]...),
		QoS:      qos,
		Deadline: deadline,
		TraceID:  trace,
	}, nil
}

// Result sources carried in ExecReply.
const (
	SourceCloud uint8 = 1
	SourceEdge  uint8 = 2
)

// ExecReply returns a task result.
type ExecReply struct {
	Source uint8
	Result []byte
}

// Marshal encodes the body.
func (e ExecReply) Marshal() ([]byte, error) {
	out := make([]byte, 0, 1+4+len(e.Result))
	out = append(out, e.Source)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Result)))
	return append(out, e.Result...), nil
}

// UnmarshalExecReply decodes an ExecReply body.
func UnmarshalExecReply(body []byte) (ExecReply, error) {
	if len(body) < 5 {
		return ExecReply{}, fmt.Errorf("%w: exec-reply too short", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(body[1:])
	if int(n) != len(body)-5 {
		return ExecReply{}, fmt.Errorf("%w: exec-reply result length", ErrBadMessage)
	}
	return ExecReply{Source: body[0], Result: append([]byte(nil), body[5:]...)}, nil
}

// ModelFetch requests a 3D model in a given format. QoS and Deadline are
// the optional scheduling trailer (see ExecRequest).
type ModelFetch struct {
	ModelID  string
	Format   uint8
	QoS      QoS
	Deadline int64
	TraceID  uint64
}

// Marshal encodes the body.
func (m ModelFetch) Marshal() ([]byte, error) {
	if len(m.ModelID) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: model id too long", ErrBadMessage)
	}
	out := make([]byte, 0, 1+2+len(m.ModelID)+qosTrailerLen)
	out = append(out, m.Format)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.ModelID)))
	out = append(out, m.ModelID...)
	return appendQoSTrailer(out, m.QoS, m.Deadline, m.TraceID), nil
}

// UnmarshalModelFetch decodes a ModelFetch body.
func UnmarshalModelFetch(body []byte) (ModelFetch, error) {
	if len(body) < 3 {
		return ModelFetch{}, fmt.Errorf("%w: model-fetch too short", ErrBadMessage)
	}
	end := 3 + int(binary.LittleEndian.Uint16(body[1:]))
	if end > len(body) {
		return ModelFetch{}, fmt.Errorf("%w: model id length", ErrBadMessage)
	}
	qos, deadline, trace, err := splitQoSTrailer(body[end:])
	if err != nil {
		return ModelFetch{}, err
	}
	return ModelFetch{Format: body[0], ModelID: string(body[3:end]), QoS: qos, Deadline: deadline, TraceID: trace}, nil
}

// ModelReply carries model bytes in the named format.
type ModelReply struct {
	Format uint8
	Source uint8 // SourceCloud or SourceEdge
	Data   []byte
}

// Marshal encodes the body.
func (m ModelReply) Marshal() ([]byte, error) {
	out := make([]byte, 0, 2+4+len(m.Data))
	out = append(out, m.Format, m.Source)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Data)))
	return append(out, m.Data...), nil
}

// UnmarshalModelReply decodes a ModelReply body.
func UnmarshalModelReply(body []byte) (ModelReply, error) {
	if len(body) < 6 {
		return ModelReply{}, fmt.Errorf("%w: model-reply too short", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(body[2:])
	if int(n) != len(body)-6 {
		return ModelReply{}, fmt.Errorf("%w: model data length", ErrBadMessage)
	}
	return ModelReply{Format: body[0], Source: body[1], Data: append([]byte(nil), body[6:]...)}, nil
}

// PanoFetch requests one panoramic frame of a VR video. QoS and Deadline
// are the optional scheduling trailer (see ExecRequest).
type PanoFetch struct {
	VideoID    string
	FrameIndex uint32
	QoS        QoS
	Deadline   int64
	TraceID    uint64
}

// Marshal encodes the body.
func (p PanoFetch) Marshal() ([]byte, error) {
	if len(p.VideoID) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: video id too long", ErrBadMessage)
	}
	out := make([]byte, 0, 4+2+len(p.VideoID)+qosTrailerLen)
	out = binary.LittleEndian.AppendUint32(out, p.FrameIndex)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.VideoID)))
	out = append(out, p.VideoID...)
	return appendQoSTrailer(out, p.QoS, p.Deadline, p.TraceID), nil
}

// UnmarshalPanoFetch decodes a PanoFetch body.
func UnmarshalPanoFetch(body []byte) (PanoFetch, error) {
	if len(body) < 6 {
		return PanoFetch{}, fmt.Errorf("%w: pano-fetch too short", ErrBadMessage)
	}
	end := 6 + int(binary.LittleEndian.Uint16(body[4:]))
	if end > len(body) {
		return PanoFetch{}, fmt.Errorf("%w: video id length", ErrBadMessage)
	}
	qos, deadline, trace, err := splitQoSTrailer(body[end:])
	if err != nil {
		return PanoFetch{}, err
	}
	return PanoFetch{
		FrameIndex: binary.LittleEndian.Uint32(body[0:]),
		VideoID:    string(body[6:end]),
		QoS:        qos,
		Deadline:   deadline,
		TraceID:    trace,
	}, nil
}

// PanoReply carries an RLE-encoded panoramic frame.
type PanoReply struct {
	Source uint8
	Data   []byte
}

// Marshal encodes the body.
func (p PanoReply) Marshal() ([]byte, error) {
	out := make([]byte, 0, 1+4+len(p.Data))
	out = append(out, p.Source)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Data)))
	return append(out, p.Data...), nil
}

// UnmarshalPanoReply decodes a PanoReply body.
func UnmarshalPanoReply(body []byte) (PanoReply, error) {
	if len(body) < 5 {
		return PanoReply{}, fmt.Errorf("%w: pano-reply too short", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(body[1:])
	if int(n) != len(body)-5 {
		return PanoReply{}, fmt.Errorf("%w: pano data length", ErrBadMessage)
	}
	return PanoReply{Source: body[0], Data: append([]byte(nil), body[5:]...)}, nil
}

// ErrorReply reports a protocol-level failure.
type ErrorReply struct {
	Code uint16
	Msg  string
}

// Error codes.
const (
	CodeInternal     uint16 = 1
	CodeBadRequest   uint16 = 2
	CodeUnknownModel uint16 = 3
	CodeUnavailable  uint16 = 4
	// CodeOverloaded is the admission-control reply: the connection's
	// worker pool and queue are full, so the request was rejected without
	// processing. The client may retry after backing off; the connection
	// stays healthy and the reply keeps its place in the response order.
	CodeOverloaded uint16 = 5
	// CodeCanceled is the reply of a request aborted by a MsgCancel frame
	// or by its caller's context expiring (a client that disconnected
	// mid-pipeline, a coalesced fetch whose last waiter departed). The
	// work was abandoned, not failed; retrying is safe.
	CodeCanceled uint16 = 6
	// CodeDeadlineExceeded is the reply of a request shed because its
	// wall-clock deadline (the QoS trailer) passed while it was queued:
	// no worker touched it, no upstream fetch was issued — the result
	// would have been stale on arrival. Retrying is safe but usually
	// pointless; the next frame has already superseded this one.
	CodeDeadlineExceeded uint16 = 7
	// CodeQuotaExceeded is the per-tenant admission reply: the
	// connection's tenant exhausted its token-bucket quota, so the
	// request was rejected without queueing or processing. Unlike
	// CodeOverloaded (the server as a whole is saturated) this is
	// rationing — other tenants' requests still flow. The client may
	// retry after backing off; the connection stays healthy and the
	// reply keeps its place in the response order.
	CodeQuotaExceeded uint16 = 8
)

// Marshal encodes the body.
func (e ErrorReply) Marshal() ([]byte, error) {
	if len(e.Msg) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: error message too long", ErrBadMessage)
	}
	out := make([]byte, 0, 2+2+len(e.Msg))
	out = binary.LittleEndian.AppendUint16(out, e.Code)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Msg)))
	return append(out, e.Msg...), nil
}

// UnmarshalErrorReply decodes an ErrorReply body.
func UnmarshalErrorReply(body []byte) (ErrorReply, error) {
	if len(body) < 4 {
		return ErrorReply{}, fmt.Errorf("%w: error-reply too short", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint16(body[2:])
	if int(n) != len(body)-4 {
		return ErrorReply{}, fmt.Errorf("%w: error message length", ErrBadMessage)
	}
	return ErrorReply{
		Code: binary.LittleEndian.Uint16(body[0:]),
		Msg:  string(body[4:]),
	}, nil
}

// CancelRequest is the body of a MsgCancel frame: the RequestID (on the
// same connection) of the in-flight request to abort.
type CancelRequest struct {
	TargetID uint64
}

// Marshal encodes the body.
func (c CancelRequest) Marshal() ([]byte, error) {
	out := make([]byte, 0, 8)
	return binary.LittleEndian.AppendUint64(out, c.TargetID), nil
}

// UnmarshalCancelRequest decodes a CancelRequest body.
func UnmarshalCancelRequest(body []byte) (CancelRequest, error) {
	if len(body) != 8 {
		return CancelRequest{}, fmt.Errorf("%w: cancel body length %d", ErrBadMessage, len(body))
	}
	return CancelRequest{TargetID: binary.LittleEndian.Uint64(body)}, nil
}

// RecognitionResult is the application-level result of a recognition
// task: what the cloud computes, the edge caches, and the client renders
// an annotation from.
type RecognitionResult struct {
	ClassIndex int32
	Label      string
	Confidence float32
	// AnnotationModelID names the 3D model the AR app should render over
	// the recognised object.
	AnnotationModelID string
}

// Marshal encodes the result for caching and transport.
func (r RecognitionResult) Marshal() ([]byte, error) {
	if len(r.Label) > math.MaxUint16 || len(r.AnnotationModelID) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: recognition strings too long", ErrBadMessage)
	}
	out := make([]byte, 0, 4+4+2+len(r.Label)+2+len(r.AnnotationModelID))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.ClassIndex))
	out = binary.LittleEndian.AppendUint32(out, math.Float32bits(r.Confidence))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Label)))
	out = append(out, r.Label...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.AnnotationModelID)))
	return append(out, r.AnnotationModelID...), nil
}

// UnmarshalRecognitionResult decodes a RecognitionResult.
func UnmarshalRecognitionResult(body []byte) (RecognitionResult, error) {
	if len(body) < 12 {
		return RecognitionResult{}, fmt.Errorf("%w: recognition result too short", ErrBadMessage)
	}
	r := RecognitionResult{
		ClassIndex: int32(binary.LittleEndian.Uint32(body[0:])),
		Confidence: math.Float32frombits(binary.LittleEndian.Uint32(body[4:])),
	}
	ln := int(binary.LittleEndian.Uint16(body[8:]))
	off := 10 + ln
	if off+2 > len(body) {
		return RecognitionResult{}, fmt.Errorf("%w: label overruns", ErrBadMessage)
	}
	r.Label = string(body[10:off])
	an := int(binary.LittleEndian.Uint16(body[off:]))
	if off+2+an != len(body) {
		return RecognitionResult{}, fmt.Errorf("%w: annotation id length", ErrBadMessage)
	}
	r.AnnotationModelID = string(body[off+2:])
	return r, nil
}
