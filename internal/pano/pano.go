// Package pano implements the VR-streaming substrate: equirectangular
// panoramic frames rendered in the cloud, cached on the edge by content
// hash, and cropped to each user's viewport on the device. This mirrors
// the paper's third workload: "current cloud-based VR applications
// leverage panoramic frames to create immersive experience ... multiple
// users playing the same VR applications or watching the same VR video
// might use the same panorama."
package pano

import (
	"encoding/binary"
	"errors"
	"fmt"
	"image/color"
	"math"

	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Panorama is a 2:1 equirectangular RGBA frame: x spans yaw (−π..π) and y
// spans pitch (−π/2..π/2).
type Panorama struct {
	Frame *vision.Frame
	// VideoID and FrameIndex identify the source frame (cache metadata).
	VideoID    string
	FrameIndex int
}

// Synthesize renders a deterministic panoramic frame for (videoID,
// frameIdx): a sky gradient with a sun, a checkered ground plane, and a
// ring of pillars that rotate slowly with the frame index, so consecutive
// frames differ but the same (video, frame) pair is always identical —
// the property hash-keyed caching relies on.
func Synthesize(videoID string, frameIdx, width int) *Panorama {
	if width < 8 {
		panic(fmt.Sprintf("pano: width %d too small", width))
	}
	w, h := width, width/2
	f := vision.NewFrame(w, h)
	rng := xrand.New(hashString(videoID) ^ uint64(frameIdx)*0x9E3779B97F4A7C15)

	// Per-video palette and pillar layout.
	skyTopR, skyTopG, skyTopB := 40+rng.Intn(60), 90+rng.Intn(80), 170+rng.Intn(80)
	groundA := color.RGBA{R: uint8(60 + rng.Intn(60)), G: uint8(80 + rng.Intn(60)), B: uint8(40 + rng.Intn(40)), A: 255}
	groundB := color.RGBA{R: groundA.R / 2, G: groundA.G / 2, B: groundA.B / 2, A: 255}
	sunYaw := rng.Range(-math.Pi, math.Pi)
	pillarCount := 6 + rng.Intn(6)
	pillarPhase := float64(frameIdx) * 0.02 // slow rotation over time

	for y := 0; y < h; y++ {
		pitch := (float64(y)/float64(h-1) - 0.5) * math.Pi // -π/2 (up) .. π/2 (down)
		for x := 0; x < w; x++ {
			yaw := (float64(x)/float64(w) - 0.5) * 2 * math.Pi
			var c color.RGBA
			if pitch < 0.08 { // sky
				t := (pitch + math.Pi/2) / (math.Pi/2 + 0.08) // 0 at zenith
				c = color.RGBA{
					R: uint8(float64(skyTopR) + t*120),
					G: uint8(float64(skyTopG) + t*90),
					B: uint8(math.Min(float64(skyTopB)+t*60, 255)),
					A: 255,
				}
				// Sun disc.
				dy := pitch + 0.5
				dx := angleDiff(yaw, sunYaw)
				if dx*dx+dy*dy*4 < 0.02 {
					c = color.RGBA{R: 255, G: 240, B: 190, A: 255}
				}
			} else { // ground: checker in world coordinates
				dist := 1.0 / math.Tan(pitch) // distance to ground cell
				gx := dist * math.Cos(yaw)
				gz := dist * math.Sin(yaw)
				if (int(math.Floor(gx))+int(math.Floor(gz)))%2 == 0 {
					c = groundA
				} else {
					c = groundB
				}
			}
			// Pillars: vertical bars at fixed yaws, fading with height.
			for p := 0; p < pillarCount; p++ {
				py := -math.Pi + (2*math.Pi*float64(p))/float64(pillarCount) + pillarPhase
				if math.Abs(angleDiff(yaw, py)) < 0.04 && pitch > -0.35 && pitch < 0.3 {
					shade := uint8(140 + 40*math.Sin(float64(p)*1.7))
					c = color.RGBA{R: shade, G: shade / 2, B: uint8(40 + p*10), A: 255}
				}
			}
			f.Set(x, y, c)
		}
	}
	return &Panorama{Frame: f, VideoID: videoID, FrameIndex: frameIdx}
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// angleDiff returns the wrapped difference a-b in (−π, π].
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi
	return d
}

// Viewport describes where a user is looking.
type Viewport struct {
	Yaw   float64 // radians, 0 = panorama centre
	Pitch float64 // radians, positive looks up toward the zenith
	FOV   float64 // horizontal field of view, radians
}

// Crop extracts a w×h perspective view from the panorama in direction vp:
// the client-side step of panoramic VR ("the client crops the panorama to
// generate the final frame for display"). Inverse mapping: for every
// output pixel, compute the world ray and sample the equirect source.
func (p *Panorama) Crop(vp Viewport, w, h int) *vision.Frame {
	out := vision.NewFrame(w, h)
	src := p.Frame
	fovV := vp.FOV * float64(h) / float64(w)
	halfW := math.Tan(vp.FOV / 2)
	halfH := math.Tan(fovV / 2)
	cosP, sinP := math.Cos(vp.Pitch), math.Sin(vp.Pitch)

	for y := 0; y < h; y++ {
		ndcY := (2*float64(y)/float64(h-1|1) - 1) * halfH
		for x := 0; x < w; x++ {
			ndcX := (2*float64(x)/float64(w-1|1) - 1) * halfW
			// Ray in camera space (z forward).
			rx, ry, rz := ndcX, ndcY, 1.0
			// Pitch rotation about the x axis.
			ry2 := ry*cosP - rz*sinP
			rz2 := ry*sinP + rz*cosP
			// Yaw rotation folds into the sample longitude directly.
			yaw := math.Atan2(rx, rz2) + vp.Yaw
			norm := math.Sqrt(rx*rx + ry2*ry2 + rz2*rz2)
			pitch := math.Asin(ry2 / norm)
			sx := int((yaw/(2*math.Pi) + 0.5) * float64(src.W))
			sy := int((pitch/math.Pi + 0.5) * float64(src.H))
			sx = ((sx % src.W) + src.W) % src.W
			if sy < 0 {
				sy = 0
			}
			if sy >= src.H {
				sy = src.H - 1
			}
			out.Set(x, y, src.At(sx, sy))
		}
	}
	return out
}

// --- RLE frame codec -------------------------------------------------

// Panoramas are big and flat-ish; a per-channel run-length encoding keeps
// transfer sizes honest (the cloud would never ship raw RGBA) while
// remaining pure stdlib and deterministic.
//
//	magic "PRLE" | w u32 | h u32 | 4 channel blocks: blockLen u32, runs...
//	run = count u8 (1..255), value u8

// ErrBadRLE is wrapped by decode failures.
var ErrBadRLE = errors.New("pano: malformed RLE frame")

const rleMagic = "PRLE"

// EncodeRLE compresses a frame.
func EncodeRLE(f *vision.Frame) []byte {
	out := make([]byte, 0, len(f.Pix)/4)
	out = append(out, rleMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(f.W))
	out = binary.LittleEndian.AppendUint32(out, uint32(f.H))
	n := f.W * f.H
	for ch := 0; ch < 4; ch++ {
		block := make([]byte, 0, n/8)
		i := 0
		for i < n {
			v := f.Pix[i*4+ch]
			run := 1
			for i+run < n && run < 255 && f.Pix[(i+run)*4+ch] == v {
				run++
			}
			block = append(block, byte(run), v)
			i += run
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(block)))
		out = append(out, block...)
	}
	return out
}

// DecodeRLE decompresses a frame encoded by EncodeRLE.
func DecodeRLE(data []byte) (*vision.Frame, error) {
	if len(data) < 12 || string(data[:4]) != rleMagic {
		return nil, fmt.Errorf("%w: header", ErrBadRLE)
	}
	w := int(binary.LittleEndian.Uint32(data[4:]))
	h := int(binary.LittleEndian.Uint32(data[8:]))
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("%w: dimensions %dx%d", ErrBadRLE, w, h)
	}
	f := vision.NewFrame(w, h)
	n := w * h
	off := 12
	for ch := 0; ch < 4; ch++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated channel %d header", ErrBadRLE, ch)
		}
		blockLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+blockLen > len(data) || blockLen%2 != 0 {
			return nil, fmt.Errorf("%w: channel %d block", ErrBadRLE, ch)
		}
		i := 0
		for b := 0; b < blockLen; b += 2 {
			run := int(data[off+b])
			v := data[off+b+1]
			if run == 0 || i+run > n {
				return nil, fmt.Errorf("%w: channel %d overrun", ErrBadRLE, ch)
			}
			for k := 0; k < run; k++ {
				f.Pix[(i+k)*4+ch] = v
			}
			i += run
		}
		if i != n {
			return nil, fmt.Errorf("%w: channel %d short (%d of %d)", ErrBadRLE, ch, i, n)
		}
		off += blockLen
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRLE, len(data)-off)
	}
	return f, nil
}
