package pano

import (
	"math"
	"testing"
)

// BenchmarkSynthesize measures cloud-side panorama rendering.
func BenchmarkSynthesize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Synthesize("bench", i, 512)
	}
}

// BenchmarkCrop measures the client-side viewport extraction.
func BenchmarkCrop(b *testing.B) {
	p := Synthesize("bench", 0, 1024)
	vp := Viewport{Yaw: 0.7, Pitch: 0.1, FOV: math.Pi / 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Crop(vp, 256, 256)
	}
}

// BenchmarkRLE measures the frame codec both ways.
func BenchmarkRLE(b *testing.B) {
	p := Synthesize("bench", 0, 512)
	enc := EncodeRLE(p.Frame)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(p.Frame.Pix)))
		for i := 0; i < b.N; i++ {
			EncodeRLE(p.Frame)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeRLE(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
