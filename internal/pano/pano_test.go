package pano

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/xrand"
)

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize("video-1", 5, 128)
	b := Synthesize("video-1", 5, 128)
	if !bytes.Equal(a.Frame.Pix, b.Frame.Pix) {
		t.Fatal("same (video, frame) produced different panoramas")
	}
}

func TestSynthesizeVariesByVideoAndFrame(t *testing.T) {
	base := Synthesize("video-1", 5, 128)
	otherVideo := Synthesize("video-2", 5, 128)
	otherFrame := Synthesize("video-1", 6, 128)
	if bytes.Equal(base.Frame.Pix, otherVideo.Frame.Pix) {
		t.Fatal("different videos identical")
	}
	if bytes.Equal(base.Frame.Pix, otherFrame.Frame.Pix) {
		t.Fatal("different frames identical")
	}
}

func TestSynthesizeGeometry(t *testing.T) {
	p := Synthesize("v", 0, 256)
	if p.Frame.W != 256 || p.Frame.H != 128 {
		t.Fatalf("panorama %dx%d, want 256x128 (2:1)", p.Frame.W, p.Frame.H)
	}
}

func TestCropDimensionsAndDeterminism(t *testing.T) {
	p := Synthesize("v", 3, 256)
	vp := Viewport{Yaw: 0.5, Pitch: 0.1, FOV: math.Pi / 2}
	a := p.Crop(vp, 64, 48)
	b := p.Crop(vp, 64, 48)
	if a.W != 64 || a.H != 48 {
		t.Fatalf("crop %dx%d", a.W, a.H)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("crop not deterministic")
	}
}

func TestCropDifferentViewportsDiffer(t *testing.T) {
	p := Synthesize("v", 3, 256)
	a := p.Crop(Viewport{Yaw: 0, FOV: math.Pi / 2}, 64, 48)
	b := p.Crop(Viewport{Yaw: math.Pi, FOV: math.Pi / 2}, 64, 48)
	if bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("opposite viewports produced identical crops")
	}
}

func TestCropLooksUpAtSky(t *testing.T) {
	// Looking straight up must sample sky rows (top of the equirect).
	p := Synthesize("v", 0, 256)
	up := p.Crop(Viewport{Pitch: math.Pi / 2.5, FOV: math.Pi / 3}, 32, 32)
	// Sky pixels are blue-dominant in the synthesiser's palette.
	blueWins := 0
	for y := 0; y < up.H; y++ {
		for x := 0; x < up.W; x++ {
			c := up.At(x, y)
			if c.B > c.R {
				blueWins++
			}
		}
	}
	if blueWins < up.W*up.H/2 {
		t.Fatalf("only %d/%d sky-ish pixels when looking up", blueWins, up.W*up.H)
	}
}

func TestAngleDiffWraps(t *testing.T) {
	if d := angleDiff(math.Pi-0.1, -math.Pi+0.1); math.Abs(d+0.2) > 1e-9 {
		t.Fatalf("wrap diff = %v, want -0.2", d)
	}
	if d := angleDiff(0.3, 0.1); math.Abs(d-0.2) > 1e-9 {
		t.Fatalf("plain diff = %v", d)
	}
}

func TestRLERoundTrip(t *testing.T) {
	p := Synthesize("rt", 2, 128)
	enc := EncodeRLE(p.Frame)
	dec, err := DecodeRLE(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Pix, p.Frame.Pix) {
		t.Fatal("RLE round trip lost data")
	}
}

func TestRLECompressesPanoramas(t *testing.T) {
	p := Synthesize("c", 0, 256)
	enc := EncodeRLE(p.Frame)
	if len(enc) >= len(p.Frame.Pix) {
		t.Fatalf("RLE did not compress: %d >= %d", len(enc), len(p.Frame.Pix))
	}
}

func TestRLERoundTripRandomFrames(t *testing.T) {
	// Property: decode(encode(f)) == f even for incompressible noise.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		fr := vision.NewFrame(17, 9) // odd sizes shake out stride bugs
		for i := range fr.Pix {
			fr.Pix[i] = uint8(rng.Intn(256))
		}
		dec, err := DecodeRLE(EncodeRLE(fr))
		return err == nil && bytes.Equal(dec.Pix, fr.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRLERejectsCorruption(t *testing.T) {
	p := Synthesize("x", 0, 64)
	enc := EncodeRLE(p.Frame)
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), enc[4:]...),
		"truncated": enc[:len(enc)/2],
		"trailing":  append(append([]byte(nil), enc...), 0xAA),
	}
	for name, data := range cases {
		if _, err := DecodeRLE(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Zero-run corruption.
	bad := append([]byte(nil), enc...)
	bad[16] = 0 // first run length inside channel 0 block
	if _, err := DecodeRLE(bad); err == nil {
		t.Error("zero run accepted")
	}
}
