package mesh

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// OBJX is the text "source" format, modelled on Wavefront OBJ with the
// textures embedded (hex) so a model is a single self-contained blob. It
// is what the cloud's model repository stores and serves in the Origin
// baseline. Deliberately heavier than CMF on both axes that matter for
// Figure 2b: byte size (decimal text vs packed binary) and load cost
// (tokenising and float parsing vs memcpy).
//
//	o <name>
//	newmat <name> <r> <g> <b> <texIndex>
//	tex <name> <w> <h> <hex...>          (hex may wrap across lines ending with '\')
//	v <x> <y> <z>
//	vn <x> <y> <z>
//	vt <u> <v>
//	usemat <index>
//	f <a> <b> <c>                        (1-based vertex indices; v/vn/vt parallel)
var ErrBadOBJX = errors.New("mesh: malformed OBJX")

// EncodeOBJX serialises a mesh as OBJX text.
func EncodeOBJX(m *Mesh) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	w := bufio.NewWriter(&b)
	fmt.Fprintf(w, "# OBJX source model\no %s\n", sanitizeName(m.Name))
	for _, mat := range m.Materials {
		fmt.Fprintf(w, "newmat %s %d %d %d %d\n", sanitizeName(mat.Name), mat.R, mat.G, mat.B, mat.Texture)
	}
	for _, tex := range m.Textures {
		fmt.Fprintf(w, "tex %s %d %d ", sanitizeName(tex.Name), tex.W, tex.H)
		h := hex.EncodeToString(tex.Pix)
		const wrap = 120
		for off := 0; off < len(h); off += wrap {
			end := off + wrap
			if end > len(h) {
				end = len(h)
			}
			if end < len(h) {
				fmt.Fprintf(w, "%s\\\n", h[off:end])
			} else {
				fmt.Fprintf(w, "%s\n", h[off:end])
			}
		}
		if len(h) == 0 {
			fmt.Fprintln(w)
		}
	}
	for _, v := range m.Verts {
		fmt.Fprintf(w, "v %g %g %g\n", v.Pos.X, v.Pos.Y, v.Pos.Z)
	}
	for _, v := range m.Verts {
		fmt.Fprintf(w, "vn %g %g %g\n", v.Normal.X, v.Normal.Y, v.Normal.Z)
	}
	for _, v := range m.Verts {
		fmt.Fprintf(w, "vt %g %g\n", v.U, v.V)
	}
	cur := uint32(0)
	fmt.Fprintf(w, "usemat 0\n")
	for _, t := range m.Tris {
		if t.Mat != cur {
			cur = t.Mat
			fmt.Fprintf(w, "usemat %d\n", cur)
		}
		fmt.Fprintf(w, "f %d %d %d\n", t.A+1, t.B+1, t.C+1)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}

// DecodeOBJX parses OBJX text. This is the deliberately expensive load
// path: every vertex costs three float parses.
func DecodeOBJX(data []byte) (*Mesh, error) {
	m := &Mesh{}
	var positions []Vec3
	var normals []Vec3
	var uvs [][2]float32
	curMat := uint32(0)

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	// readContinued glues lines ending in '\' (texture hex wrapping).
	var pending string
	nextLine := func() (string, bool) {
		if pending != "" {
			l := pending
			pending = ""
			return l, true
		}
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			for strings.HasSuffix(line, "\\") {
				line = strings.TrimSuffix(line, "\\")
				if !sc.Scan() {
					break
				}
				lineNo++
				line += strings.TrimSpace(sc.Text())
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := nextLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		op := fields[0]
		args := fields[1:]
		switch op {
		case "o":
			if len(args) >= 1 {
				m.Name = args[0]
			}
		case "newmat":
			if len(args) != 5 {
				return nil, fmt.Errorf("%w: line %d: newmat wants 5 args", ErrBadOBJX, lineNo)
			}
			r, err1 := strconv.Atoi(args[1])
			g, err2 := strconv.Atoi(args[2])
			bl, err3 := strconv.Atoi(args[3])
			tx, err4 := strconv.Atoi(args[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("%w: line %d: newmat numbers", ErrBadOBJX, lineNo)
			}
			m.Materials = append(m.Materials, Material{
				Name: args[0], R: uint8(r), G: uint8(g), B: uint8(bl), Texture: int32(tx),
			})
		case "tex":
			if len(args) < 3 {
				return nil, fmt.Errorf("%w: line %d: tex wants name w h hex", ErrBadOBJX, lineNo)
			}
			w, err1 := strconv.Atoi(args[1])
			h, err2 := strconv.Atoi(args[2])
			if err1 != nil || err2 != nil || w <= 0 || h <= 0 {
				return nil, fmt.Errorf("%w: line %d: tex dimensions", ErrBadOBJX, lineNo)
			}
			hexStr := ""
			if len(args) > 3 {
				hexStr = strings.Join(args[3:], "")
			}
			pix, err := hex.DecodeString(hexStr)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: tex hex: %v", ErrBadOBJX, lineNo, err)
			}
			if len(pix) != w*h*3 {
				return nil, fmt.Errorf("%w: line %d: tex %dx%d needs %d bytes, got %d", ErrBadOBJX, lineNo, w, h, w*h*3, len(pix))
			}
			m.Textures = append(m.Textures, Texture{Name: args[0], W: w, H: h, Pix: pix})
		case "v", "vn":
			if len(args) != 3 {
				return nil, fmt.Errorf("%w: line %d: %s wants 3 floats", ErrBadOBJX, lineNo, op)
			}
			var f [3]float32
			for i, a := range args {
				v, err := strconv.ParseFloat(a, 32)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadOBJX, lineNo, err)
				}
				f[i] = float32(v)
			}
			if op == "v" {
				positions = append(positions, Vec3{f[0], f[1], f[2]})
			} else {
				normals = append(normals, Vec3{f[0], f[1], f[2]})
			}
		case "vt":
			if len(args) != 2 {
				return nil, fmt.Errorf("%w: line %d: vt wants 2 floats", ErrBadOBJX, lineNo)
			}
			u, err1 := strconv.ParseFloat(args[0], 32)
			v, err2 := strconv.ParseFloat(args[1], 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: line %d: vt floats", ErrBadOBJX, lineNo)
			}
			uvs = append(uvs, [2]float32{float32(u), float32(v)})
		case "usemat":
			if len(args) != 1 {
				return nil, fmt.Errorf("%w: line %d: usemat wants 1 arg", ErrBadOBJX, lineNo)
			}
			idx, err := strconv.Atoi(args[0])
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("%w: line %d: usemat index", ErrBadOBJX, lineNo)
			}
			curMat = uint32(idx)
		case "f":
			if len(args) != 3 {
				return nil, fmt.Errorf("%w: line %d: f wants 3 indices", ErrBadOBJX, lineNo)
			}
			var idx [3]uint32
			for i, a := range args {
				v, err := strconv.Atoi(a)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("%w: line %d: face index %q", ErrBadOBJX, lineNo, a)
				}
				idx[i] = uint32(v - 1)
			}
			m.Tris = append(m.Tris, Triangle{A: idx[0], B: idx[1], C: idx[2], Mat: curMat})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrBadOBJX, lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: scan: %v", ErrBadOBJX, err)
	}
	if len(normals) != len(positions) || len(uvs) != len(positions) {
		return nil, fmt.Errorf("%w: %d positions, %d normals, %d uvs", ErrBadOBJX, len(positions), len(normals), len(uvs))
	}
	m.Verts = make([]Vertex, len(positions))
	for i := range positions {
		m.Verts[i] = Vertex{Pos: positions[i], Normal: normals[i], U: uvs[i][0], V: uvs[i][1]}
	}
	if len(m.Materials) == 0 {
		m.Materials = []Material{{Name: "default", R: 200, G: 200, B: 200, Texture: -1}}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOBJX, err)
	}
	return m, nil
}
