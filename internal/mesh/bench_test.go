package mesh

import "testing"

// The two decode benches together quantify the load asymmetry behind
// Figure 2b: OBJX (text source) parse vs CMF (runtime binary) load.

func benchModel(b *testing.B) *Mesh {
	b.Helper()
	return Generate(Spec{Name: "bench", Segments: 24, TextureSize: 64, TextureCount: 2, Displace: 0.03, Seed: 1})
}

// BenchmarkDecodeOBJX measures the slow source-format parse (cloud-side
// model load in the Origin baseline).
func BenchmarkDecodeOBJX(b *testing.B) {
	data, err := EncodeOBJX(benchModel(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeOBJX(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeCMF measures the fast runtime-format load (what clients
// pay after an edge hit).
func BenchmarkDecodeCMF(b *testing.B) {
	data, err := EncodeCMF(benchModel(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCMF(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures procedural model synthesis.
func BenchmarkGenerate(b *testing.B) {
	spec := Spec{Name: "g", Segments: 16, TextureSize: 32, TextureCount: 1, Seed: 2}
	for i := 0; i < b.N; i++ {
		Generate(spec)
	}
}
