package mesh

import (
	"errors"
	"fmt"
	"math"
)

// Vec3 is a 3-component float vector.
type Vec3 struct{ X, Y, Z float32 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns the Euclidean length.
func (a Vec3) Norm() float32 {
	return float32(math.Sqrt(float64(a.Dot(a))))
}

// Normalize returns a unit-length copy (zero vectors stay zero).
func (a Vec3) Normalize() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Vertex carries position, normal and texture coordinates.
type Vertex struct {
	Pos    Vec3
	Normal Vec3
	U, V   float32
}

// Triangle references three vertices by index plus a material slot.
type Triangle struct {
	A, B, C uint32
	Mat     uint32
}

// Material is a simple diffuse material with an optional texture slot
// (-1 = untextured).
type Material struct {
	Name    string
	R, G, B uint8
	Texture int32
}

// Texture is an embedded RGB image.
type Texture struct {
	Name string
	W, H int
	Pix  []uint8 // len = W*H*3
}

// Mesh is a complete 3D model.
type Mesh struct {
	Name      string
	Verts     []Vertex
	Tris      []Triangle
	Materials []Material
	Textures  []Texture
}

// ErrInvalidMesh is wrapped by Validate failures.
var ErrInvalidMesh = errors.New("mesh: invalid")

// Validate checks referential integrity: triangle indices in range,
// material slots valid, texture slots valid, texture buffers sized.
func (m *Mesh) Validate() error {
	nv := uint32(len(m.Verts))
	for i, t := range m.Tris {
		if t.A >= nv || t.B >= nv || t.C >= nv {
			return fmt.Errorf("%w: triangle %d references vertex out of range", ErrInvalidMesh, i)
		}
		if int(t.Mat) >= len(m.Materials) && len(m.Materials) > 0 {
			return fmt.Errorf("%w: triangle %d references material %d of %d", ErrInvalidMesh, i, t.Mat, len(m.Materials))
		}
	}
	for i, mat := range m.Materials {
		if mat.Texture >= 0 && int(mat.Texture) >= len(m.Textures) {
			return fmt.Errorf("%w: material %d references texture %d of %d", ErrInvalidMesh, i, mat.Texture, len(m.Textures))
		}
	}
	for i, tex := range m.Textures {
		if tex.W <= 0 || tex.H <= 0 || len(tex.Pix) != tex.W*tex.H*3 {
			return fmt.Errorf("%w: texture %d has %d bytes for %dx%d", ErrInvalidMesh, i, len(tex.Pix), tex.W, tex.H)
		}
	}
	return nil
}

// Stats summarises a mesh for logs and experiment tables.
func (m *Mesh) Stats() string {
	texBytes := 0
	for _, t := range m.Textures {
		texBytes += len(t.Pix)
	}
	return fmt.Sprintf("%s: %d verts, %d tris, %d materials, %d textures (%d tex bytes)",
		m.Name, len(m.Verts), len(m.Tris), len(m.Materials), len(m.Textures), texBytes)
}

// RecomputeNormals replaces all vertex normals with area-weighted face
// normal averages; generators call it after displacing vertices.
func (m *Mesh) RecomputeNormals() {
	acc := make([]Vec3, len(m.Verts))
	for _, t := range m.Tris {
		a, b, c := m.Verts[t.A].Pos, m.Verts[t.B].Pos, m.Verts[t.C].Pos
		n := b.Sub(a).Cross(c.Sub(a)) // length ∝ 2·area: natural weighting
		acc[t.A] = acc[t.A].Add(n)
		acc[t.B] = acc[t.B].Add(n)
		acc[t.C] = acc[t.C].Add(n)
	}
	for i := range m.Verts {
		n := acc[i].Normalize()
		if n == (Vec3{}) {
			// Vertex only touches degenerate triangles (e.g. the pole of
			// a UV sphere, where a quad edge collapses): keep the
			// generator-provided normal instead of zeroing it.
			continue
		}
		m.Verts[i].Normal = n
	}
}

// Bounds returns the axis-aligned bounding box (zero mesh: zeros).
func (m *Mesh) Bounds() (min, max Vec3) {
	if len(m.Verts) == 0 {
		return
	}
	min, max = m.Verts[0].Pos, m.Verts[0].Pos
	for _, v := range m.Verts[1:] {
		if v.Pos.X < min.X {
			min.X = v.Pos.X
		}
		if v.Pos.Y < min.Y {
			min.Y = v.Pos.Y
		}
		if v.Pos.Z < min.Z {
			min.Z = v.Pos.Z
		}
		if v.Pos.X > max.X {
			max.X = v.Pos.X
		}
		if v.Pos.Y > max.Y {
			max.Y = v.Pos.Y
		}
		if v.Pos.Z > max.Z {
			max.Z = v.Pos.Z
		}
	}
	return
}
