package mesh

import (
	"testing"
	"testing/quick"

	"github.com/edge-immersion/coic/internal/xrand"
)

// The decoders face bytes from the network; arbitrary and mutated inputs
// must produce errors, never panics or runaway allocations.

func TestDecodeCMFFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeCMF(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOBJXFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeOBJX(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCMFMutatedValidInput(t *testing.T) {
	// Mutations of a valid encoding must decode to a valid mesh (CRC
	// collision — astronomically unlikely) or error out; the decoder must
	// never return a mesh that fails validation.
	m := Generate(Spec{Name: "fz", Segments: 5, TextureSize: 8, TextureCount: 1, Seed: 1})
	data, err := EncodeCMF(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(99)
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		got, err := DecodeCMF(mut)
		if err == nil {
			if verr := got.Validate(); verr != nil {
				t.Fatalf("decoder returned invalid mesh: %v", verr)
			}
		}
	}
}
