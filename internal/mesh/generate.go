package mesh

import (
	"fmt"
	"math"

	"github.com/edge-immersion/coic/internal/xrand"
)

// Spec parameterises procedural model generation. The generator exists
// because the paper's 3D assets (the models behind Figure 2b's sizes) are
// not available: what matters for the experiment is that models of
// controlled byte size flow through fetch → load → draw, and procedural
// meshes exercise exactly the same path.
type Spec struct {
	// Name labels the model; it also seeds the geometry, so the same
	// name and parameters always produce the same bytes (hash-keyed
	// caching depends on this).
	Name string
	// Segments controls sphere/torus tessellation (≥ 4).
	Segments int
	// TextureSize is the side of each embedded square texture
	// (0 = untextured).
	TextureSize int
	// TextureCount is how many textures to embed.
	TextureCount int
	// Displace adds deterministic radial noise, making the mesh look
	// organic and the normals non-trivial.
	Displace float32
	// Seed drives all randomness.
	Seed uint64
}

// Generate builds a deterministic procedural model: a displaced UV sphere
// body with a torus ring, optional checker/noise textures, and one
// material per texture. It panics on nonsensical specs (build-time
// constants in every caller).
func Generate(spec Spec) *Mesh {
	if spec.Segments < 4 {
		panic(fmt.Sprintf("mesh: Segments %d < 4", spec.Segments))
	}
	rng := xrand.New(spec.Seed ^ hashName(spec.Name))
	m := &Mesh{Name: spec.Name}

	// Materials and textures first so triangles can reference them.
	if spec.TextureCount == 0 || spec.TextureSize == 0 {
		m.Materials = []Material{{Name: "flat", R: 200, G: 180, B: 150, Texture: -1}}
	}
	for i := 0; i < spec.TextureCount && spec.TextureSize > 0; i++ {
		tex := genTexture(fmt.Sprintf("%s-tex%d", spec.Name, i), spec.TextureSize, rng.Fork(fmt.Sprintf("tex%d", i)))
		m.Textures = append(m.Textures, tex)
		m.Materials = append(m.Materials, Material{
			Name:    fmt.Sprintf("mat%d", i),
			R:       uint8(120 + rng.Intn(120)),
			G:       uint8(120 + rng.Intn(120)),
			B:       uint8(120 + rng.Intn(120)),
			Texture: int32(i),
		})
	}

	addSphere(m, spec.Segments, 1.0, spec.Displace, rng.Fork("sphere"))
	addTorus(m, spec.Segments, 1.35, 0.18, rng.Fork("torus"))
	m.RecomputeNormals()
	if err := m.Validate(); err != nil {
		panic(err) // generator bug
	}
	return m
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// addSphere appends a UV sphere with `seg` latitudinal and 2·seg
// longitudinal segments, radially displaced by up to displace.
func addSphere(m *Mesh, seg int, radius, displace float32, rng *xrand.RNG) {
	base := uint32(len(m.Verts))
	rows, cols := seg, 2*seg
	for r := 0; r <= rows; r++ {
		theta := math.Pi * float64(r) / float64(rows)
		for c := 0; c <= cols; c++ {
			phi := 2 * math.Pi * float64(c) / float64(cols)
			dir := Vec3{
				float32(math.Sin(theta) * math.Cos(phi)),
				float32(math.Cos(theta)),
				float32(math.Sin(theta) * math.Sin(phi)),
			}
			rad := radius
			if displace > 0 {
				rad += displace * float32(rng.NormFloat64()*0.3)
			}
			m.Verts = append(m.Verts, Vertex{
				Pos:    dir.Scale(rad),
				Normal: dir,
				U:      float32(c) / float32(cols),
				V:      float32(r) / float32(rows),
			})
		}
	}
	mats := uint32(len(m.Materials))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i0 := base + uint32(r*(cols+1)+c)
			i1 := i0 + 1
			i2 := i0 + uint32(cols+1)
			i3 := i2 + 1
			mat := uint32(0)
			if mats > 0 {
				mat = uint32(r+c) % mats
			}
			m.Tris = append(m.Tris,
				Triangle{A: i0, B: i2, C: i1, Mat: mat},
				Triangle{A: i1, B: i2, C: i3, Mat: mat},
			)
		}
	}
}

// addTorus appends a torus (major radius R, tube radius r) around the Y
// axis.
func addTorus(m *Mesh, seg int, R, r float32, rng *xrand.RNG) {
	base := uint32(len(m.Verts))
	major, minor := 2*seg, seg/2
	if minor < 3 {
		minor = 3
	}
	for i := 0; i <= major; i++ {
		u := 2 * math.Pi * float64(i) / float64(major)
		cu, su := float32(math.Cos(u)), float32(math.Sin(u))
		for j := 0; j <= minor; j++ {
			v := 2 * math.Pi * float64(j) / float64(minor)
			cv, sv := float32(math.Cos(v)), float32(math.Sin(v))
			pos := Vec3{(R + r*cv) * cu, r * sv, (R + r*cv) * su}
			normal := Vec3{cv * cu, sv, cv * su}
			m.Verts = append(m.Verts, Vertex{
				Pos: pos, Normal: normal,
				U: float32(i) / float32(major),
				V: float32(j) / float32(minor),
			})
		}
	}
	mats := uint32(len(m.Materials))
	for i := 0; i < major; i++ {
		for j := 0; j < minor; j++ {
			i0 := base + uint32(i*(minor+1)+j)
			i1 := i0 + 1
			i2 := i0 + uint32(minor+1)
			i3 := i2 + 1
			mat := uint32(0)
			if mats > 0 {
				mat = uint32(i) % mats
			}
			m.Tris = append(m.Tris,
				Triangle{A: i0, B: i1, C: i2, Mat: mat},
				Triangle{A: i1, B: i3, C: i2, Mat: mat},
			)
		}
	}
}

// genTexture renders a deterministic checker-plus-noise RGB texture.
func genTexture(name string, side int, rng *xrand.RNG) Texture {
	pix := make([]uint8, side*side*3)
	baseR, baseG, baseB := 60+rng.Intn(160), 60+rng.Intn(160), 60+rng.Intn(160)
	cell := side / 8
	if cell < 1 {
		cell = 1
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			o := (y*side + x) * 3
			v := 0
			if ((x/cell)+(y/cell))%2 == 0 {
				v = 50
			}
			n := int(rng.Range(-10, 10))
			pix[o] = clamp8(baseR + v + n)
			pix[o+1] = clamp8(baseG + v + n)
			pix[o+2] = clamp8(baseB + v + n)
		}
	}
	return Texture{Name: name, W: side, H: side, Pix: pix}
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// SpecForTargetSize searches generator parameters so that the CMF
// encoding of the model lands within about 3% of targetBytes. It
// reproduces the paper's Figure 2b model-size ladder (231KB…15053KB)
// without the original assets.
func SpecForTargetSize(name string, targetBytes int, seed uint64) Spec {
	spec := Spec{Name: name, Segments: 8, Displace: 0.05, Seed: seed}
	// Texture budget: ~35% of the target in texture bytes, split into up
	// to 4 textures, mirrors game-asset proportions and keeps tessellation
	// from dominating generation time for big models.
	texBudget := targetBytes * 35 / 100
	spec.TextureCount = 1 + targetBytes/(4<<20)
	if spec.TextureCount > 4 {
		spec.TextureCount = 4
	}
	side := int(math.Sqrt(float64(texBudget / (3 * spec.TextureCount))))
	// Round to a multiple of 8 for the checker pattern; floor at 16.
	side = side / 8 * 8
	if side < 16 {
		side = 16
		spec.TextureCount = 1
	}
	spec.TextureSize = side

	// Binary search the tessellation for the remaining byte budget.
	lo, hi := 4, 512
	for lo < hi {
		mid := (lo + hi) / 2
		spec.Segments = mid
		if estimateCMFSize(spec) < targetBytes {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	spec.Segments = lo
	return spec
}

// estimateCMFSize predicts the CMF encoding size of a spec without
// generating the mesh: vertex/triangle counts follow directly from the
// tessellation parameters.
func estimateCMFSize(spec Spec) int {
	seg := spec.Segments
	rows, cols := seg, 2*seg
	sphereV := (rows + 1) * (cols + 1)
	sphereT := rows * cols * 2
	major, minor := 2*seg, seg/2
	if minor < 3 {
		minor = 3
	}
	torusV := (major + 1) * (minor + 1)
	torusT := major * minor * 2
	verts := sphereV + torusV
	tris := sphereT + torusT
	bytes := cmfHeaderSize + verts*cmfVertexSize + tris*cmfTriangleSize
	texCount := spec.TextureCount
	if spec.TextureSize == 0 {
		texCount = 0
	}
	bytes += texCount * (spec.TextureSize*spec.TextureSize*3 + 64)
	bytes += (texCount + 1) * 32 // materials
	return bytes
}
