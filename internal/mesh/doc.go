// Package mesh implements the 3D model substrate for CoIC rendering
// tasks. The paper's Figure 2b measures "load latency" — fetching a 3D
// model and loading it into memory before drawing — for models from ~231KB
// to ~15MB. This package provides:
//
//   - mesh types and validation;
//   - a procedural generator that hits requested byte sizes, replacing the
//     paper's (unavailable) model assets;
//   - OBJX, a text source format (what the cloud stores — slow to parse);
//   - CMF, a binary runtime format (what the edge caches — fast to load).
//
// The OBJX→CMF asymmetry is the mechanism behind the paper's claim that
// caching "the loaded data in rendering tasks on the edge" cuts load
// latency beyond what bandwidth alone explains.
package mesh
