package mesh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// CMF ("CoIC Mesh Format") is the binary runtime format: a header, raw
// little-endian vertex/triangle buffers, materials, then textures, then a
// CRC. Loading is a near-memcpy, which is exactly why the edge caches
// models in this form — the paper's "caching the loaded data in rendering
// tasks on the edge".
//
//	magic "CMF1"
//	name string(u16+bytes)
//	vertCount u32 | triCount u32 | matCount u32 | texCount u32
//	verts: vertCount × (pos 3f32, normal 3f32, u f32, v f32)
//	tris:  triCount × (a u32, b u32, c u32, mat u32)
//	mats:  matCount × (name string, r u8, g u8, b u8, texture i32)
//	texs:  texCount × (name string, w u32, h u32, raw RGB bytes)
//	crc32 (IEEE, over everything before it)
const (
	cmfMagic        = "CMF1"
	cmfHeaderSize   = 4 + 2 + 16 // magic + empty name + counts
	cmfVertexSize   = 32
	cmfTriangleSize = 16
)

// ErrBadCMF is wrapped by CMF decode failures.
var ErrBadCMF = errors.New("mesh: malformed CMF")

// EncodeCMF serialises a mesh to the binary runtime format.
func EncodeCMF(m *Mesh) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	size := cmfEncodedSize(m)
	buf := make([]byte, 0, size)
	buf = append(buf, cmfMagic...)
	buf = appendStr(buf, m.Name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Verts)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Tris)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Materials)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Textures)))
	for _, v := range m.Verts {
		for _, f := range [8]float32{v.Pos.X, v.Pos.Y, v.Pos.Z, v.Normal.X, v.Normal.Y, v.Normal.Z, v.U, v.V} {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(f))
		}
	}
	for _, t := range m.Tris {
		buf = binary.LittleEndian.AppendUint32(buf, t.A)
		buf = binary.LittleEndian.AppendUint32(buf, t.B)
		buf = binary.LittleEndian.AppendUint32(buf, t.C)
		buf = binary.LittleEndian.AppendUint32(buf, t.Mat)
	}
	for _, mat := range m.Materials {
		buf = appendStr(buf, mat.Name)
		buf = append(buf, mat.R, mat.G, mat.B)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(mat.Texture))
	}
	for _, tex := range m.Textures {
		buf = appendStr(buf, tex.Name)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(tex.W))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(tex.H))
		buf = append(buf, tex.Pix...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

func cmfEncodedSize(m *Mesh) int {
	size := 4 + 2 + len(m.Name) + 16 +
		len(m.Verts)*cmfVertexSize + len(m.Tris)*cmfTriangleSize + 4
	for _, mat := range m.Materials {
		size += 2 + len(mat.Name) + 3 + 4
	}
	for _, tex := range m.Textures {
		size += 2 + len(tex.Name) + 8 + len(tex.Pix)
	}
	return size
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// DecodeCMF parses the binary runtime format, verifying CRC and
// referential integrity.
func DecodeCMF(data []byte) (*Mesh, error) {
	if len(data) < cmfHeaderSize+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCMF, len(data))
	}
	payload := data[:len(data)-4]
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != stored {
		return nil, fmt.Errorf("%w: crc mismatch", ErrBadCMF)
	}
	d := &cmfDecoder{buf: payload}
	if string(d.take(4)) != cmfMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCMF)
	}
	m := &Mesh{Name: d.str()}
	nv, nt := d.u32(), d.u32()
	nm, nx := d.u32(), d.u32()
	if d.err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadCMF, d.err)
	}
	// Bound counts by the remaining payload so a corrupt header cannot
	// trigger a huge allocation.
	if int64(nv)*cmfVertexSize > int64(len(payload)) || int64(nt)*cmfTriangleSize > int64(len(payload)) {
		return nil, fmt.Errorf("%w: counts exceed payload", ErrBadCMF)
	}
	m.Verts = make([]Vertex, nv)
	for i := range m.Verts {
		var f [8]float32
		for j := range f {
			f[j] = d.f32()
		}
		m.Verts[i] = Vertex{
			Pos:    Vec3{f[0], f[1], f[2]},
			Normal: Vec3{f[3], f[4], f[5]},
			U:      f[6], V: f[7],
		}
	}
	m.Tris = make([]Triangle, nt)
	for i := range m.Tris {
		m.Tris[i] = Triangle{A: d.u32(), B: d.u32(), C: d.u32(), Mat: d.u32()}
	}
	for i := uint32(0); i < nm && d.err == nil; i++ {
		mat := Material{Name: d.str()}
		rgb := d.take(3)
		if rgb != nil {
			mat.R, mat.G, mat.B = rgb[0], rgb[1], rgb[2]
		}
		mat.Texture = int32(d.u32())
		m.Materials = append(m.Materials, mat)
	}
	for i := uint32(0); i < nx && d.err == nil; i++ {
		tex := Texture{Name: d.str()}
		tex.W, tex.H = int(d.u32()), int(d.u32())
		if tex.W <= 0 || tex.H <= 0 || int64(tex.W)*int64(tex.H)*3 > int64(len(payload)) {
			return nil, fmt.Errorf("%w: texture %d dimensions", ErrBadCMF, i)
		}
		pix := d.take(tex.W * tex.H * 3)
		tex.Pix = append([]uint8(nil), pix...)
		m.Textures = append(m.Textures, tex)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCMF, d.err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCMF, len(d.buf)-d.off)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCMF, err)
	}
	return m, nil
}

type cmfDecoder struct {
	buf []byte
	off int
	err error
}

func (d *cmfDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at %d (+%d)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *cmfDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *cmfDecoder) f32() float32 {
	return math.Float32frombits(d.u32())
}

func (d *cmfDecoder) str() string {
	b := d.take(2)
	if b == nil {
		return ""
	}
	return string(d.take(int(binary.LittleEndian.Uint16(b))))
}
