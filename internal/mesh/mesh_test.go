package mesh

import (
	"bytes"
	"math"
	"testing"
)

func tinyMesh() *Mesh {
	return &Mesh{
		Name: "tri",
		Verts: []Vertex{
			{Pos: Vec3{0, 0, 0}, Normal: Vec3{0, 0, 1}, U: 0, V: 0},
			{Pos: Vec3{1, 0, 0}, Normal: Vec3{0, 0, 1}, U: 1, V: 0},
			{Pos: Vec3{0, 1, 0}, Normal: Vec3{0, 0, 1}, U: 0, V: 1},
		},
		Tris:      []Triangle{{A: 0, B: 1, C: 2, Mat: 0}},
		Materials: []Material{{Name: "m", R: 10, G: 20, B: 30, Texture: -1}},
	}
}

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Fatalf("Cross = %v", got)
	}
	n := Vec3{3, 4, 0}.Normalize()
	if math.Abs(float64(n.Norm())-1) > 1e-6 {
		t.Fatalf("Normalize norm = %v", n.Norm())
	}
	z := Vec3{}.Normalize()
	if z != (Vec3{}) {
		t.Fatal("zero normalize changed vector")
	}
}

func TestValidateCatchesBrokenMeshes(t *testing.T) {
	cases := map[string]func(*Mesh){
		"vert oob": func(m *Mesh) { m.Tris[0].A = 99 },
		"mat oob":  func(m *Mesh) { m.Tris[0].Mat = 5 },
		"tex oob":  func(m *Mesh) { m.Materials[0].Texture = 3 },
		"tex toosmall": func(m *Mesh) {
			m.Textures = append(m.Textures, Texture{Name: "t", W: 4, H: 4, Pix: make([]uint8, 5)})
		},
	}
	for name, mutate := range cases {
		m := tinyMesh()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := tinyMesh().Validate(); err != nil {
		t.Fatalf("good mesh rejected: %v", err)
	}
}

func TestRecomputeNormals(t *testing.T) {
	m := tinyMesh()
	for i := range m.Verts {
		m.Verts[i].Normal = Vec3{9, 9, 9}
	}
	m.RecomputeNormals()
	for i, v := range m.Verts {
		// Triangle in the XY plane, CCW → +Z normal.
		if math.Abs(float64(v.Normal.Z)-1) > 1e-5 {
			t.Fatalf("vert %d normal = %v", i, v.Normal)
		}
	}
}

func TestBounds(t *testing.T) {
	m := tinyMesh()
	min, max := m.Bounds()
	if min != (Vec3{0, 0, 0}) || max != (Vec3{1, 1, 0}) {
		t.Fatalf("bounds = %v %v", min, max)
	}
	var empty Mesh
	zmin, zmax := empty.Bounds()
	if zmin != (Vec3{}) || zmax != (Vec3{}) {
		t.Fatal("empty bounds not zero")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "model", Segments: 8, TextureSize: 16, TextureCount: 1, Displace: 0.05, Seed: 3}
	a := Generate(spec)
	b := Generate(spec)
	ea, _ := EncodeCMF(a)
	eb, _ := EncodeCMF(b)
	if !bytes.Equal(ea, eb) {
		t.Fatal("generation is not deterministic")
	}
	spec.Seed = 4
	ec, _ := EncodeCMF(Generate(spec))
	if bytes.Equal(ea, ec) {
		t.Fatal("different seeds produced identical models")
	}
}

func TestGenerateValid(t *testing.T) {
	m := Generate(Spec{Name: "x", Segments: 6, TextureSize: 8, TextureCount: 2, Seed: 1})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Verts) == 0 || len(m.Tris) == 0 {
		t.Fatal("degenerate model")
	}
	// All normals approximately unit length after recompute.
	for i, v := range m.Verts {
		n := v.Normal.Norm()
		if n < 0.9 || n > 1.1 {
			t.Fatalf("vert %d normal length %v", i, n)
		}
	}
}

func TestSpecForTargetSizeHitsTargets(t *testing.T) {
	// The Figure 2b ladder. Generated CMF size must land within 10% of
	// each target (the binary search quantises by tessellation row).
	for _, kb := range []int{231, 1073, 1949, 7050} {
		target := kb * 1024
		spec := SpecForTargetSize("m", target, 42)
		m := Generate(spec)
		data, err := EncodeCMF(m)
		if err != nil {
			t.Fatal(err)
		}
		got := len(data)
		dev := math.Abs(float64(got-target)) / float64(target)
		if dev > 0.10 {
			t.Errorf("target %dKB: got %dKB (deviation %.1f%%)", kb, got/1024, dev*100)
		}
	}
}

func TestEstimateMatchesActual(t *testing.T) {
	spec := Spec{Name: "m", Segments: 16, TextureSize: 32, TextureCount: 2, Seed: 5}
	m := Generate(spec)
	data, _ := EncodeCMF(m)
	est := estimateCMFSize(spec)
	dev := math.Abs(float64(est-len(data))) / float64(len(data))
	if dev > 0.05 {
		t.Fatalf("estimate %d vs actual %d (%.1f%% off)", est, len(data), dev*100)
	}
}

func TestCMFRoundTrip(t *testing.T) {
	m := Generate(Spec{Name: "rt", Segments: 6, TextureSize: 8, TextureCount: 1, Displace: 0.02, Seed: 9})
	data, err := EncodeCMF(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCMF(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || len(got.Verts) != len(m.Verts) || len(got.Tris) != len(m.Tris) ||
		len(got.Materials) != len(m.Materials) || len(got.Textures) != len(m.Textures) {
		t.Fatal("structure did not round-trip")
	}
	for i := range m.Verts {
		if m.Verts[i] != got.Verts[i] {
			t.Fatalf("vertex %d: %+v != %+v", i, got.Verts[i], m.Verts[i])
		}
	}
	for i := range m.Tris {
		if m.Tris[i] != got.Tris[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
	if !bytes.Equal(m.Textures[0].Pix, got.Textures[0].Pix) {
		t.Fatal("texture bytes differ")
	}
}

func TestCMFRejectsCorruption(t *testing.T) {
	m := tinyMesh()
	data, _ := EncodeCMF(m)
	bad := append([]byte(nil), data...)
	bad[10] ^= 0x55
	if _, err := DecodeCMF(bad); err == nil {
		t.Fatal("bit flip accepted")
	}
	for _, cut := range []int{0, 5, len(data) / 2, len(data) - 1} {
		if _, err := DecodeCMF(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestOBJXRoundTrip(t *testing.T) {
	m := Generate(Spec{Name: "rt2", Segments: 5, TextureSize: 8, TextureCount: 1, Seed: 11})
	data, err := EncodeOBJX(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOBJX(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || len(got.Verts) != len(m.Verts) || len(got.Tris) != len(m.Tris) {
		t.Fatalf("structure: %s vs %s", got.Stats(), m.Stats())
	}
	// Text round-trip through %g is lossless for float32.
	for i := range m.Verts {
		if m.Verts[i].Pos != got.Verts[i].Pos {
			t.Fatalf("vertex %d position %v != %v", i, got.Verts[i].Pos, m.Verts[i].Pos)
		}
	}
	for i := range m.Tris {
		if m.Tris[i] != got.Tris[i] {
			t.Fatalf("triangle %d: %+v != %+v", i, got.Tris[i], m.Tris[i])
		}
	}
	if !bytes.Equal(m.Textures[0].Pix, got.Textures[0].Pix) {
		t.Fatal("texture did not survive hex round-trip")
	}
}

func TestOBJXBiggerThanCMF(t *testing.T) {
	// The premise of the Figure 2b asymmetry: source format is larger.
	m := Generate(Spec{Name: "cmp", Segments: 10, TextureSize: 16, TextureCount: 1, Seed: 2})
	objx, _ := EncodeOBJX(m)
	cmf, _ := EncodeCMF(m)
	if len(objx) <= len(cmf) {
		t.Fatalf("OBJX %d <= CMF %d — size asymmetry lost", len(objx), len(cmf))
	}
}

func TestOBJXRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "banana 1 2 3\n",
		"short v":           "v 1 2\n",
		"bad float":         "v a b c\n",
		"bad face index":    "o m\nv 0 0 0\nvn 0 0 1\nvt 0 0\nf 0 1 1\n",
		"face oob":          "o m\nv 0 0 0\nvn 0 0 1\nvt 0 0\nf 1 2 3\n",
		"count mismatch":    "o m\nv 0 0 0\nv 1 1 1\nvn 0 0 1\nvt 0 0\n",
		"bad tex hex":       "tex t 2 2 zz\n",
		"tex size":          "tex t 2 2 aabb\n",
	}
	for name, in := range cases {
		if _, err := DecodeOBJX([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestOBJXSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\no m\nv 0 0 0\nvn 0 0 1\nvt 0 0\nf 1 1 1\n"
	m, err := DecodeOBJX([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "m" || len(m.Verts) != 1 {
		t.Fatalf("parsed %s", m.Stats())
	}
}
