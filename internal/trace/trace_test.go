package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
	"github.com/edge-immersion/coic/internal/xrand"
)

func baseConfig() Config {
	return Config{
		Users: 10, Cells: 4, Duration: 30 * time.Second,
		RatePerUser: 2, Objects: 100, ZipfAlpha: 0.9,
		Locality: 0.7, HotSetSize: 8, MoveProb: 0.05,
		TaskMix: TaskMix{Recognize: 0.5, Render: 0.3, Pano: 0.2},
		Seed:    42,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(baseConfig())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	events, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	cfg := baseConfig()
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("events not sorted")
		}
		if e.At >= cfg.Duration {
			t.Fatalf("event at %v beyond duration", e.At)
		}
		if e.User < 0 || e.User >= cfg.Users || e.Cell < 0 || e.Cell >= cfg.Cells {
			t.Fatalf("event out of range: %+v", e)
		}
		if e.Object < 0 || e.Object >= cfg.Objects {
			t.Fatalf("object out of range: %+v", e)
		}
	}
}

func TestGenerateRateRoughlyHonoured(t *testing.T) {
	cfg := baseConfig()
	cfg.Users, cfg.Duration, cfg.RatePerUser = 20, time.Minute, 3
	events, _ := Generate(cfg)
	expected := float64(cfg.Users) * cfg.Duration.Seconds() * cfg.RatePerUser
	got := float64(len(events))
	if math.Abs(got-expected)/expected > 0.15 {
		t.Fatalf("generated %v events, expected ~%v", got, expected)
	}
}

func TestTaskMixRespected(t *testing.T) {
	cfg := baseConfig()
	cfg.Users, cfg.Duration = 30, time.Minute
	cfg.TaskMix = TaskMix{Recognize: 1, Render: 1} // no pano
	events, _ := Generate(cfg)
	st := Analyze(events)
	if st.PerTask["pano"] != 0 {
		t.Fatalf("pano events generated despite zero weight: %d", st.PerTask["pano"])
	}
	rec, ren := float64(st.PerTask["recognize"]), float64(st.PerTask["render"])
	if rec == 0 || ren == 0 {
		t.Fatal("missing task kind")
	}
	if ratio := rec / ren; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("50/50 mix skewed: %v", ratio)
	}
}

func TestLocalityIncreasesRedundancy(t *testing.T) {
	lo := baseConfig()
	lo.Locality, lo.TaskMix = 0, TaskMix{Recognize: 1}
	lo.Users, lo.Duration = 20, time.Minute
	hi := lo
	hi.Locality = 0.95

	evLo, _ := Generate(lo)
	evHi, _ := Generate(hi)
	rLo := Analyze(evLo).RedundantPct
	rHi := Analyze(evHi).RedundantPct
	if rHi <= rLo {
		t.Fatalf("locality did not raise redundancy: %.1f%% vs %.1f%%", rHi, rLo)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := xrand.New(1)
	z := NewZipf(1000, 1.1, rng)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("rank 0 (%d) not ≫ rank 500 (%d) under alpha=1.1", counts[0], counts[500])
	}
	// Uniform when alpha = 0.
	u := NewZipf(10, 0, xrand.New(2))
	uc := make([]int, 10)
	for i := 0; i < 50000; i++ {
		uc[u.Sample()]++
	}
	for r, c := range uc {
		if math.Abs(float64(c)-5000) > 500 {
			t.Fatalf("alpha=0 rank %d count %d not ~uniform", r, c)
		}
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewZipf(0, 1, xrand.New(1))
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Cells = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.RatePerUser = 0 },
		func(c *Config) { c.Objects = 0 },
		func(c *Config) { c.ZipfAlpha = -1 },
		func(c *Config) { c.Locality = 1.5 },
		func(c *Config) { c.MoveProb = -0.1 },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events, _ := Generate(baseConfig())
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("%d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("{\"at_ns\": 1}\nnot json\n"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPanoFramesFollowTime(t *testing.T) {
	cfg := baseConfig()
	cfg.TaskMix = TaskMix{Pano: 1}
	events, _ := Generate(cfg)
	for _, e := range events {
		if e.Task != wire.TaskPano {
			t.Fatal("non-pano event under pano-only mix")
		}
		want := int(e.At / (33 * time.Millisecond))
		if e.Frame != want {
			t.Fatalf("frame %d at %v, want %d", e.Frame, e.At, want)
		}
	}
}

func TestAnalyzeCounts(t *testing.T) {
	events := []Event{
		{User: 1, Object: 5, Task: wire.TaskRecognize},
		{User: 2, Object: 5, Task: wire.TaskRecognize, At: time.Second},
		{User: 1, Object: 6, Task: wire.TaskRender, At: 2 * time.Second},
	}
	st := Analyze(events)
	if st.Events != 3 || st.Users != 2 || st.UniqueObjs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.RedundantPct-33.33) > 1 {
		t.Fatalf("redundancy = %v", st.RedundantPct)
	}
	if st.Duration != 2*time.Second {
		t.Fatalf("duration = %v", st.Duration)
	}
}
