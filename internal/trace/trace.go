// Package trace generates CoIC workloads: populations of mobile users
// moving between locations, issuing recognition/render/pano requests whose
// redundancy structure follows the paper's motivation — users in the same
// place at the same time tend to ask for the same computations. Zipf
// object popularity, Poisson arrivals and a cell-grid locality model
// together control how much cross-user redundancy an experiment sees.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Event is one IC request in a workload trace.
type Event struct {
	// At is the offset from trace start.
	At time.Duration `json:"at_ns"`
	// User identifies the requesting client.
	User int `json:"user"`
	// Cell is the user's location when the request was issued.
	Cell int `json:"cell"`
	// Task is the IC task kind.
	Task wire.Task `json:"task"`
	// Object identifies what is being recognised / rendered / watched:
	// class+instance for recognition, model index for render, (video,
	// frame) packed for pano.
	Object int `json:"object"`
	// Frame is the pano frame index (pano tasks only).
	Frame int `json:"frame,omitempty"`
	// ViewSeed drives per-request viewpoint variation: two users seeing
	// the same Object get different seeds, hence different camera angles
	// over the same content.
	ViewSeed uint64 `json:"view_seed"`
	// QoS is the request's service class (Config.InteractiveShare draws
	// it); zero (best-effort) is omitted from the JSONL form, keeping
	// pre-QoS traces byte-identical.
	QoS wire.QoS `json:"qos,omitempty"`
}

// Config parameterises workload generation.
type Config struct {
	// Users is the population size.
	Users int
	// Cells is the number of distinct locations.
	Cells int
	// Duration is the trace length.
	Duration time.Duration
	// RatePerUser is the mean requests/second each user issues.
	RatePerUser float64
	// Objects is the universe of distinct objects per task kind.
	Objects int
	// ZipfAlpha shapes object popularity (0 = uniform; ~1 = web-like).
	ZipfAlpha float64
	// Locality is the probability a request targets the user's cell hot
	// set rather than the global universe. Higher locality = more
	// cross-user redundancy = more CoIC hits.
	Locality float64
	// HotSetSize is how many objects each cell's hot set holds.
	HotSetSize int
	// MoveProb is the per-request probability that the user relocates to
	// a random cell first (cheap stand-in for dwell-time mobility).
	MoveProb float64
	// TaskMix weights recognition, render and pano tasks; they need not
	// sum to 1 (normalised internally). Zero-value mix means
	// recognition-only.
	TaskMix TaskMix
	// InteractiveShare is the probability an event is tagged
	// QoSInteractive (0 = all best-effort). The draw happens only when
	// positive, so zero-share traces replay bit-identically to pre-QoS
	// ones.
	InteractiveShare float64
	// Seed drives all sampling.
	Seed uint64
}

// TaskMix weights the three IC task kinds.
type TaskMix struct {
	Recognize float64
	Render    float64
	Pano      float64
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("trace: Users = %d", c.Users)
	case c.Cells <= 0:
		return fmt.Errorf("trace: Cells = %d", c.Cells)
	case c.Duration <= 0:
		return fmt.Errorf("trace: Duration = %v", c.Duration)
	case c.RatePerUser <= 0:
		return fmt.Errorf("trace: RatePerUser = %v", c.RatePerUser)
	case c.Objects <= 0:
		return fmt.Errorf("trace: Objects = %d", c.Objects)
	case c.ZipfAlpha < 0:
		return fmt.Errorf("trace: ZipfAlpha = %v", c.ZipfAlpha)
	case c.Locality < 0 || c.Locality > 1:
		return fmt.Errorf("trace: Locality = %v", c.Locality)
	case c.MoveProb < 0 || c.MoveProb > 1:
		return fmt.Errorf("trace: MoveProb = %v", c.MoveProb)
	case c.InteractiveShare < 0 || c.InteractiveShare > 1:
		return fmt.Errorf("trace: InteractiveShare = %v", c.InteractiveShare)
	}
	return nil
}

// Zipf samples ranks 0..n-1 with P(k) ∝ 1/(k+1)^alpha, deterministically.
type Zipf struct {
	cum []float64
	rng *xrand.RNG
}

// NewZipf precomputes the cumulative distribution. alpha = 0 degenerates
// to uniform. Panics on n <= 0 (constructor misuse).
func NewZipf(n int, alpha float64, rng *xrand.RNG) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("trace: Zipf over %d items", n))
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), alpha)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Sample draws one rank.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Generate produces a time-sorted event trace.
func Generate(cfg Config) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.HotSetSize <= 0 {
		cfg.HotSetSize = 8
	}
	mix := cfg.TaskMix
	if mix.Recognize == 0 && mix.Render == 0 && mix.Pano == 0 {
		mix.Recognize = 1
	}
	totalMix := mix.Recognize + mix.Render + mix.Pano

	rng := xrand.New(cfg.Seed)
	popularity := NewZipf(cfg.Objects, cfg.ZipfAlpha, rng.Fork("zipf"))
	hotRank := NewZipf(cfg.HotSetSize, cfg.ZipfAlpha, rng.Fork("hot"))

	// Each cell's hot set: a deterministic slice of the object universe.
	hotSets := make([][]int, cfg.Cells)
	for c := range hotSets {
		cellRng := rng.Fork(fmt.Sprintf("cell%d", c))
		set := make([]int, cfg.HotSetSize)
		for i := range set {
			set[i] = cellRng.Intn(cfg.Objects)
		}
		hotSets[c] = set
	}

	var events []Event
	for u := 0; u < cfg.Users; u++ {
		userRng := rng.Fork(fmt.Sprintf("user%d", u))
		cell := userRng.Intn(cfg.Cells)
		t := time.Duration(0)
		for {
			gap := time.Duration(userRng.ExpFloat64() / cfg.RatePerUser * float64(time.Second))
			t += gap
			if t >= cfg.Duration {
				break
			}
			if userRng.Float64() < cfg.MoveProb {
				cell = userRng.Intn(cfg.Cells)
			}
			var object int
			if userRng.Float64() < cfg.Locality {
				object = hotSets[cell][hotRank.Sample()]
			} else {
				object = popularity.Sample()
			}
			ev := Event{
				At: t, User: u, Cell: cell,
				Object:   object,
				ViewSeed: userRng.Uint64(),
			}
			switch pickTask(userRng.Float64()*totalMix, mix) {
			case wire.TaskRecognize:
				ev.Task = wire.TaskRecognize
			case wire.TaskRender:
				ev.Task = wire.TaskRender
			case wire.TaskPano:
				ev.Task = wire.TaskPano
				// Users watching the same video at the same time request
				// the same frames: frame index follows trace time.
				ev.Frame = int(t / (33 * time.Millisecond)) // 30 fps
			}
			if cfg.InteractiveShare > 0 && userRng.Float64() < cfg.InteractiveShare {
				ev.QoS = wire.QoSInteractive
			}
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].User < events[j].User
	})
	return events, nil
}

func pickTask(v float64, mix TaskMix) wire.Task {
	if v < mix.Recognize {
		return wire.TaskRecognize
	}
	if v < mix.Recognize+mix.Render {
		return wire.TaskRender
	}
	return wire.TaskPano
}

// Stats summarises a trace.
type Stats struct {
	Events       int
	Users        int
	UniqueObjs   int
	PerTask      map[string]int
	Duration     time.Duration
	RedundantPct float64 // share of events whose (task, object) was seen before
	Interactive  int     // events tagged QoSInteractive
}

// Analyze computes trace statistics, including the redundancy share that
// upper-bounds any cache's hit ratio.
func Analyze(events []Event) Stats {
	st := Stats{PerTask: map[string]int{}}
	users := map[int]struct{}{}
	objs := map[int]struct{}{}
	seen := map[[3]int]struct{}{}
	redundant := 0
	for _, e := range events {
		st.Events++
		users[e.User] = struct{}{}
		objs[e.Object] = struct{}{}
		st.PerTask[e.Task.String()]++
		if e.QoS == wire.QoSInteractive {
			st.Interactive++
		}
		if e.At > st.Duration {
			st.Duration = e.At
		}
		key := [3]int{int(e.Task), e.Object, e.Frame}
		if _, ok := seen[key]; ok {
			redundant++
		} else {
			seen[key] = struct{}{}
		}
	}
	st.Users = len(users)
	st.UniqueObjs = len(objs)
	if st.Events > 0 {
		st.RedundantPct = float64(redundant) / float64(st.Events) * 100
	}
	return st
}

// WriteJSONL streams events as JSON lines.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses events written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}
