package member

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2018, 8, 20, 9, 0, 0, 0, time.UTC)

// manualClock is a deterministic injectable clock.
type manualClock struct{ now time.Time }

func (c *manualClock) Now() time.Time          { return c.now }
func (c *manualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestViewMergeConverges(t *testing.T) {
	a := NewView("edge-a", t0)
	b := NewView("edge-b", t0)

	// One bidirectional exchange: both learn the other.
	if !b.Merge(a.Digest(), t0) {
		t.Fatal("b learned nothing from a")
	}
	if !a.Merge(b.Digest(), t0) {
		t.Fatal("a learned nothing from b")
	}
	wantAlive := []string{"edge-a", "edge-b"}
	if got := a.AliveIDs(); !reflect.DeepEqual(got, wantAlive) {
		t.Fatalf("a alive = %v", got)
	}
	if got := b.AliveIDs(); !reflect.DeepEqual(got, wantAlive) {
		t.Fatalf("b alive = %v", got)
	}
	// Re-merging identical state changes nothing and keeps the epoch.
	e := a.Epoch()
	if a.Merge(b.Digest(), t0) {
		t.Fatal("idempotent merge reported a change")
	}
	if a.Epoch() != e {
		t.Fatalf("epoch moved on a no-op merge: %d -> %d", e, a.Epoch())
	}
}

func TestViewSeverityAndIncarnationOrder(t *testing.T) {
	v := NewView("self", t0)
	v.Merge(Digest{From: "x", Entries: []Entry{{ID: "x", Incarnation: 2, Status: Alive}}}, t0)

	// Same incarnation: suspect beats alive, dead beats suspect.
	if !v.Merge(Digest{From: "y", Entries: []Entry{{ID: "x", Incarnation: 2, Status: Suspect}}}, t0) {
		t.Fatal("equal-incarnation suspect did not supersede alive")
	}
	// Lower incarnation never wins, whatever the status.
	if v.Merge(Digest{From: "y", Entries: []Entry{{ID: "x", Incarnation: 1, Status: Dead}}}, t0) {
		t.Fatal("stale dead rumour superseded fresher state")
	}
	// Alive at the same incarnation cannot undo suspicion…
	if v.Merge(Digest{From: "y", Entries: []Entry{{ID: "x", Incarnation: 2, Status: Alive}}}, t0) {
		t.Fatal("equal-incarnation alive resurrected a suspect")
	}
	// …but a higher incarnation (x refuting) can.
	if !v.Merge(Digest{From: "x", Entries: []Entry{{ID: "x", Incarnation: 3, Status: Alive}}}, t0) {
		t.Fatal("refutation at a higher incarnation was ignored")
	}
	st, _ := v.Status("x")
	if st.Status != Alive || st.Incarnation != 3 {
		t.Fatalf("x = %+v", st)
	}
}

func TestViewSelfRefutation(t *testing.T) {
	v := NewView("self", t0)
	before, _ := v.Status("self")

	// A rumour of our death must be refuted by outbidding its incarnation.
	if !v.Merge(Digest{From: "x", Entries: []Entry{{ID: "self", Incarnation: 5, Status: Dead}}}, t0) {
		t.Fatal("self-death rumour ignored")
	}
	after, _ := v.Status("self")
	if after.Status != Alive || after.Incarnation != 6 {
		t.Fatalf("self = %+v after refuting inc-5 death (was %+v)", after, before)
	}

	// After Leave, the death is ours and must NOT be refuted.
	v.Leave(t0)
	v.Merge(Digest{From: "x", Entries: []Entry{{ID: "self", Incarnation: 7, Status: Suspect}}}, t0)
	final, _ := v.Status("self")
	if final.Status != Dead {
		t.Fatalf("left node refuted its own departure: %+v", final)
	}
}

func TestViewSuspectExpiryAndRecovery(t *testing.T) {
	v := NewView("self", t0)
	v.Merge(Digest{From: "x", Entries: []Entry{{ID: "x", Incarnation: 1, Status: Alive}}}, t0)

	if !v.MarkSuspect("x", t0) {
		t.Fatal("MarkSuspect on an alive member returned false")
	}
	if v.MarkSuspect("x", t0.Add(time.Second)) {
		t.Fatal("re-suspecting must not restart the timer")
	}
	// Direct evidence (a completed probe) clears the suspicion.
	if !v.ObserveAlive("x", t0.Add(time.Second)) {
		t.Fatal("ObserveAlive on a suspect returned false")
	}
	st, _ := v.Status("x")
	if st.Status != Alive {
		t.Fatalf("x = %+v after direct evidence", st)
	}

	// Unrefuted suspicion expires into death.
	v.MarkSuspect("x", t0)
	if v.Expire(t0.Add(time.Second), 2*time.Second) {
		t.Fatal("expired before the timeout")
	}
	if !v.Expire(t0.Add(2*time.Second), 2*time.Second) {
		t.Fatal("did not expire at the timeout")
	}
	alive, suspect, dead := v.Counts()
	if alive != 1 || suspect != 0 || dead != 1 {
		t.Fatalf("counts = %d/%d/%d", alive, suspect, dead)
	}
	if ids := v.AliveIDs(); !reflect.DeepEqual(ids, []string{"self"}) {
		t.Fatalf("alive = %v", ids)
	}
}

// Suspects keep their ring arc: RingMembers drops a member only once it
// is declared dead, so a single dropped probe cannot re-home keys.
func TestViewRingMembersKeepSuspects(t *testing.T) {
	v := NewView("self", t0)
	v.Merge(Digest{From: "x", Entries: []Entry{{ID: "x", Incarnation: 1, Status: Alive}}}, t0)
	v.MarkSuspect("x", t0)
	if got := v.RingMembers(); !reflect.DeepEqual(got, []string{"self", "x"}) {
		t.Fatalf("ring members with a suspect = %v", got)
	}
	v.Expire(t0.Add(time.Minute), time.Second)
	if got := v.RingMembers(); !reflect.DeepEqual(got, []string{"self"}) {
		t.Fatalf("ring members after death = %v", got)
	}
	// A left node excludes itself (its own status is dead).
	v.Leave(t0.Add(time.Minute))
	if got := v.RingMembers(); len(got) != 0 {
		t.Fatalf("ring members after leave = %v", got)
	}
}

// A node that restarts (fresh incarnation 1) must be able to rejoin a
// fleet that still holds its death at a higher incarnation — by merging
// the tombstone and refuting it.
func TestViewRestartRejoinsThroughRefutation(t *testing.T) {
	fleet := NewView("a", t0)
	fleet.Merge(Digest{From: "b", Entries: []Entry{{ID: "b", Incarnation: 4, Status: Dead}}}, t0)

	restarted := NewView("b", t0)
	// The restarted node announces itself; the fleet's tombstone wins.
	fleet.Merge(restarted.Digest(), t0)
	if st, _ := fleet.Status("b"); st.Status != Dead {
		t.Fatalf("fresh inc-1 alive beat inc-4 dead: %+v", st)
	}
	// The ack carries the tombstone back; the node refutes it…
	restarted.Merge(fleet.Digest(), t0)
	if st, _ := restarted.Status("b"); st.Status != Alive || st.Incarnation != 5 {
		t.Fatalf("restarted node failed to refute its tombstone: %+v", st)
	}
	// …and the next exchange resurrects it fleet-wide.
	fleet.Merge(restarted.Digest(), t0)
	if st, _ := fleet.Status("b"); st.Status != Alive || st.Incarnation != 5 {
		t.Fatalf("fleet did not accept the refutation: %+v", st)
	}
}

// pipe wires two agents' probes directly to each other's HandleDigest.
type pipe struct {
	agents map[string]*Agent
	fail   map[string]bool // addresses that drop probes
}

func (p *pipe) probe(_ context.Context, addr string, kind Kind, d Digest) (Digest, error) {
	if p.fail[addr] {
		return Digest{}, errors.New("unreachable")
	}
	a, ok := p.agents[addr]
	if !ok {
		return Digest{}, errors.New("no such member")
	}
	return a.HandleDigest(d), nil
}

func agentFor(t *testing.T, p *pipe, clk *manualClock, self string, seeds ...string) *Agent {
	t.Helper()
	a, err := NewAgent(Config{
		Self:           self,
		Seeds:          seeds,
		Interval:       100 * time.Millisecond,
		SuspectTimeout: 300 * time.Millisecond,
		Probe:          p.probe,
		Now:            clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.agents[self] = a
	return a
}

func TestAgentJoinViaSeedAndConvergence(t *testing.T) {
	clk := &manualClock{now: t0}
	p := &pipe{agents: map[string]*Agent{}, fail: map[string]bool{}}
	seed := agentFor(t, p, clk, "edge-seed")
	a := agentFor(t, p, clk, "edge-a", "edge-seed")
	b := agentFor(t, p, clk, "edge-b", "edge-seed")

	ctx := context.Background()
	for i := 0; i < 6; i++ {
		a.Tick(ctx)
		b.Tick(ctx)
		seed.Tick(ctx)
		clk.Advance(100 * time.Millisecond)
	}
	want := []string{"edge-a", "edge-b", "edge-seed"}
	for _, ag := range []*Agent{seed, a, b} {
		if got := ag.View().AliveIDs(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s alive = %v, want %v", ag.View().Self(), got, want)
		}
	}
}

func TestAgentDeathConvergesSuspectThenDead(t *testing.T) {
	clk := &manualClock{now: t0}
	p := &pipe{agents: map[string]*Agent{}, fail: map[string]bool{}}
	a := agentFor(t, p, clk, "edge-a")
	b := agentFor(t, p, clk, "edge-b", "edge-a")
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		a.Tick(ctx)
		b.Tick(ctx)
		clk.Advance(100 * time.Millisecond)
	}

	// b dies. a must suspect it on the next failed probe, then expire it.
	p.fail["edge-b"] = true
	changed := 0
	for i := 0; i < 10; i++ {
		a.Tick(ctx)
		clk.Advance(100 * time.Millisecond)
		if st, ok := a.View().Status("edge-b"); ok && st.Status == Dead {
			changed = i
			break
		}
	}
	if st, _ := a.View().Status("edge-b"); st.Status != Dead {
		t.Fatalf("edge-b never declared dead: %+v", st)
	}
	if changed < 3 {
		t.Fatalf("death after %d ticks; suspicion must last SuspectTimeout", changed)
	}
	if got := a.View().AliveIDs(); !reflect.DeepEqual(got, []string{"edge-a"}) {
		t.Fatalf("alive = %v", got)
	}
}

// A node whose every peer died keeps gossiping at its seeds, so a
// restarted seed re-forms the fleet (the solo-degradation retry path).
func TestAgentSoloRetriesSeeds(t *testing.T) {
	clk := &manualClock{now: t0}
	p := &pipe{agents: map[string]*Agent{}, fail: map[string]bool{}}
	a := agentFor(t, p, clk, "edge-a", "edge-seed")
	ctx := context.Background()

	// Seed absent: a stays solo but keeps trying.
	for i := 0; i < 3; i++ {
		a.Tick(ctx)
		clk.Advance(100 * time.Millisecond)
	}
	if got := a.View().AliveIDs(); !reflect.DeepEqual(got, []string{"edge-a"}) {
		t.Fatalf("alive = %v", got)
	}

	// Seed comes up; the very next periods find it.
	seed := agentFor(t, p, clk, "edge-seed")
	for i := 0; i < 4; i++ {
		a.Tick(ctx)
		seed.Tick(ctx)
		clk.Advance(100 * time.Millisecond)
	}
	want := []string{"edge-a", "edge-seed"}
	if got := a.View().AliveIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("alive after seed recovery = %v", got)
	}
}

func TestAgentLeaveBroadcasts(t *testing.T) {
	clk := &manualClock{now: t0}
	p := &pipe{agents: map[string]*Agent{}, fail: map[string]bool{}}
	a := agentFor(t, p, clk, "edge-a")
	b := agentFor(t, p, clk, "edge-b", "edge-a")
	c := agentFor(t, p, clk, "edge-c", "edge-a")
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		a.Tick(ctx)
		b.Tick(ctx)
		c.Tick(ctx)
		clk.Advance(100 * time.Millisecond)
	}

	changes := 0
	a.cfg.OnChange = func() { changes++ }
	a.Leave(ctx)
	if changes == 0 {
		t.Fatal("Leave did not notify OnChange")
	}
	// The leave reached b and c synchronously: no suspicion phase.
	for _, peer := range []*Agent{b, c} {
		st, _ := peer.View().Status("edge-a")
		if st.Status != Dead {
			t.Fatalf("%s sees edge-a as %v after leave", peer.View().Self(), st.Status)
		}
	}
	want := []string{"edge-b", "edge-c"}
	if got := b.View().AliveIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("b alive = %v", got)
	}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(Config{Probe: (&pipe{}).probe}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := NewAgent(Config{Self: "x"}); err == nil {
		t.Fatal("missing Probe accepted")
	}
	a, err := NewAgent(Config{Self: "x", Probe: (&pipe{}).probe})
	if err != nil {
		t.Fatal(err)
	}
	if a.cfg.Interval <= 0 || a.cfg.SuspectTimeout <= 0 {
		t.Fatalf("defaults not applied: %+v", a.cfg)
	}
}
