// Package member implements SWIM-lite gossip membership for the edge
// federation: every node keeps a View of the fleet (who is alive, suspect
// or dead, each with an incarnation number), exchanges it with one peer
// per protocol period, and deterministically derives the federation's
// consistent-hash ring from the sorted alive set — so all converged nodes
// agree on every key's owners without any coordinator.
//
// The protocol is deliberately smaller than full SWIM: edge fleets are
// tens of nodes, so frames carry the complete member list (any exchange
// is a full anti-entropy round) and there is no indirect-probe stage —
// a failed direct probe suspects the target immediately, and suspicion
// ages into death after a timeout unless the target refutes it by
// gossiping a higher incarnation. The three SWIM invariants that matter
// are kept exactly:
//
//   - Only a member itself bumps its incarnation (to refute suspicion).
//   - A higher incarnation supersedes any lower-incarnation state.
//   - At equal incarnation, the more severe status wins
//     (dead > suspect > alive), so rumours cannot resurrect a node.
//
// The package is transport-agnostic and clock-injected: the Agent speaks
// through a ProbeFunc callback and tests drive it with a manual clock,
// mirroring how cache.Federation injects its peer transport.
package member

import (
	"sort"
	"sync"
	"time"
)

// Status is a member's health as believed by one view.
type Status uint8

const (
	Alive Status = iota
	Suspect
	Dead
)

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Entry is one member's state within a digest: ID (the dialable edge
// address the ring partitions on), the member's incarnation, and status.
type Entry struct {
	ID          string
	Incarnation uint64
	Status      Status
}

// Digest is a serialisable snapshot of a view: the observing member, its
// epoch, and every entry (including the observer itself), sorted by ID.
// It is what membership frames carry.
type Digest struct {
	From    string
	Epoch   uint64
	Entries []Entry
}

// state is one member's slot in a view.
type state struct {
	incarnation uint64
	status      Status
	since       time.Time // when the current status was set
}

// View is one node's membership table. All methods are safe for
// concurrent use. The epoch is a node-local version counter: it bumps on
// every state change, and because it only grows, rings rebuilt from the
// view carry monotonic versions. Epochs of different nodes need not
// agree — ring *contents* converge because they are a pure function of
// the alive set, which gossip converges.
type View struct {
	mu      sync.Mutex
	self    string
	left    bool // graceful leave in progress: never refute our own death
	epoch   uint64
	entries map[string]*state
}

// NewView builds a view knowing only itself: alive, incarnation 1,
// epoch 1.
func NewView(self string, now time.Time) *View {
	return &View{
		self:  self,
		epoch: 1,
		entries: map[string]*state{
			self: {incarnation: 1, status: Alive, since: now},
		},
	}
}

// Self reports the observing member's ID.
func (v *View) Self() string { return v.self }

// Epoch reports the view's version counter.
func (v *View) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// Digest snapshots the view for gossip, entries sorted by ID.
func (v *View) Digest() Digest {
	v.mu.Lock()
	defer v.mu.Unlock()
	d := Digest{From: v.self, Epoch: v.epoch}
	for id, st := range v.entries {
		d.Entries = append(d.Entries, Entry{ID: id, Incarnation: st.incarnation, Status: st.status})
	}
	sort.Slice(d.Entries, func(a, b int) bool { return d.Entries[a].ID < d.Entries[b].ID })
	return d
}

// AliveIDs returns the sorted alive member set, always including self
// unless this node has left. This is the ring membership.
func (v *View) AliveIDs() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var ids []string
	for id, st := range v.entries {
		if st.status == Alive {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// RingMembers returns the sorted non-dead member set — the federation
// ring's membership. Suspects keep their ring arc: only confirmed death
// (or a graceful leave) moves key ownership, so one dropped probe cannot
// trigger a migration storm, and replicas cover reads while a suspect is
// being re-probed.
func (v *View) RingMembers() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var ids []string
	for id, st := range v.entries {
		if st.status != Dead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Counts reports how many members are alive, suspect and dead.
func (v *View) Counts() (alive, suspect, dead int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, st := range v.entries {
		switch st.status {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return
}

// Merge folds a received digest into the view, returning whether
// anything changed. now stamps freshly changed statuses so suspicion
// timers restart on new evidence. Receiving a frame *from* a member is
// direct evidence it is alive, handled by the From entry it carries
// (every sender includes itself).
func (v *View) Merge(d Digest, now time.Time) (changed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, e := range d.Entries {
		if e.ID == v.self {
			if v.mergeSelf(e, now) {
				changed = true
			}
			continue
		}
		st, known := v.entries[e.ID]
		if !known {
			v.entries[e.ID] = &state{incarnation: e.Incarnation, status: e.Status, since: now}
			changed = true
			continue
		}
		if e.Incarnation > st.incarnation ||
			(e.Incarnation == st.incarnation && e.Status > st.status) {
			st.incarnation = e.Incarnation
			st.status = e.Status
			st.since = now
			changed = true
		}
	}
	if changed {
		v.epoch++
	}
	return changed
}

// mergeSelf applies a gossiped entry about this node: rumours of our
// suspicion or death are refuted by bumping our incarnation past the
// rumour's, unless we are deliberately leaving.
func (v *View) mergeSelf(e Entry, now time.Time) bool {
	st := v.entries[v.self]
	if v.left {
		// We announced our own death; let it propagate, and adopt a
		// higher incarnation if a peer somehow has one so dead still wins.
		if e.Incarnation > st.incarnation {
			st.incarnation = e.Incarnation
			st.status = Dead
			return true
		}
		return false
	}
	if e.Status != Alive && e.Incarnation >= st.incarnation {
		st.incarnation = e.Incarnation + 1
		st.status = Alive
		st.since = now
		return true
	}
	return false
}

// ObserveAlive records direct evidence that id answered a probe: a
// suspect we can still reach returns to alive at its current incarnation.
// (Gossip alone could not do this — at equal incarnation suspect beats
// alive — but a completed round trip outranks any rumour we hold.)
func (v *View) ObserveAlive(id string, now time.Time) (changed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	st, ok := v.entries[id]
	if !ok || id == v.self {
		return false
	}
	if st.status == Suspect {
		st.status = Alive
		st.since = now
		v.epoch++
		return true
	}
	return false
}

// MarkSuspect records a failed probe of id: alive becomes suspect and
// the suspicion timer starts. Suspect and dead members are unchanged
// (repeated failures do not restart the timer — that would let a flapping
// link postpone death forever).
func (v *View) MarkSuspect(id string, now time.Time) (changed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	st, ok := v.entries[id]
	if !ok || id == v.self || st.status != Alive {
		return false
	}
	st.status = Suspect
	st.since = now
	v.epoch++
	return true
}

// Expire ages suspects into dead members once their suspicion has lasted
// at least timeout without refutation.
func (v *View) Expire(now time.Time, timeout time.Duration) (changed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for id, st := range v.entries {
		if id == v.self || st.status != Suspect {
			continue
		}
		if now.Sub(st.since) >= timeout {
			st.status = Dead
			st.since = now
			changed = true
		}
	}
	if changed {
		v.epoch++
	}
	return changed
}

// Leave marks this node dead at a bumped incarnation (so the
// announcement supersedes every alive rumour in flight) and suppresses
// future self-refutation. It returns the digest to broadcast.
func (v *View) Leave(now time.Time) Digest {
	v.mu.Lock()
	st := v.entries[v.self]
	if !v.left {
		v.left = true
		st.incarnation++
		st.status = Dead
		st.since = now
		v.epoch++
	}
	v.mu.Unlock()
	return v.Digest()
}

// Left reports whether Leave has been called.
func (v *View) Left() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.left
}

// Status reports one member's state (ok=false when unknown).
func (v *View) Status(id string) (Entry, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	st, ok := v.entries[id]
	if !ok {
		return Entry{}, false
	}
	return Entry{ID: id, Incarnation: st.incarnation, Status: st.status}, true
}
