package member

import (
	"context"
	"errors"
	"sort"
	"time"
)

// Kind selects what a transmitted digest means; the transport maps it to
// the corresponding wire frame (member-ping / member-gossip /
// member-leave — member-ack is the reply direction and never originated).
type Kind uint8

const (
	KindPing   Kind = iota // liveness probe, ack expected
	KindGossip             // unsolicited push (join announcement)
	KindLeave              // graceful departure notice
)

// ProbeFunc delivers a digest to addr and returns the peer's answering
// digest. Every membership exchange is bidirectional anti-entropy: even
// gossip and leave notices are acked with the receiver's view, which the
// sender merges for free. An error means the peer could not be reached
// (for KindPing that is evidence of failure; for the others it is
// ignored — they are best-effort).
type ProbeFunc func(ctx context.Context, addr string, kind Kind, d Digest) (Digest, error)

// Config assembles an Agent.
type Config struct {
	// Self is this node's member ID — its dialable edge address.
	Self string
	// Seeds are addresses to contact when the view holds no other live
	// member: initial join, and rejoin after everyone else vanished.
	// Self is skipped, so all fleet members can share one seed list.
	Seeds []string
	// Interval is the protocol period (one probe per period).
	// Defaults to 500ms.
	Interval time.Duration
	// SuspectTimeout is how long a suspicion lasts before the member is
	// declared dead. Defaults to 4 intervals.
	SuspectTimeout time.Duration
	// Probe is the transport (required).
	Probe ProbeFunc
	// OnChange fires after any view change, outside the view's lock —
	// the serving glue rebuilds the ring there. Optional.
	OnChange func()
	// Now is the clock (time.Now when nil); tests inject a manual one.
	Now func() time.Time
}

// Agent runs the gossip protocol over a View: one probe per period to
// the next member in ID order (round-robin over alive + suspect members,
// so a suspect gets a chance to refute before it expires), seed dialing
// when alone, suspicion on probe failure, and expiry sweeps.
type Agent struct {
	cfg  Config
	view *View

	rrNext int // round-robin cursor into the sorted target list
}

// NewAgent validates cfg and builds the agent (not yet running — call
// Run, or drive Tick manually in tests).
func NewAgent(cfg Config) (*Agent, error) {
	if cfg.Self == "" {
		return nil, errors.New("member: Config.Self required")
	}
	if cfg.Probe == nil {
		return nil, errors.New("member: Config.Probe required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 4 * cfg.Interval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Agent{cfg: cfg, view: NewView(cfg.Self, cfg.Now())}, nil
}

// View exposes the agent's membership table.
func (a *Agent) View() *View { return a.view }

// Run executes protocol periods until ctx dies. The first period runs
// immediately so a booting node joins without waiting out an interval.
func (a *Agent) Run(ctx context.Context) {
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	a.Tick(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.Tick(ctx)
		}
	}
}

// Tick runs one protocol period: expire overdue suspects, pick the next
// probe target (a live/suspect member, or a seed when alone), ping it,
// and fold the outcome into the view. Tick is not safe for concurrent
// use with itself (Run serialises it); it is safe against HandleDigest.
func (a *Agent) Tick(ctx context.Context) {
	now := a.cfg.Now()
	changed := a.view.Expire(now, a.cfg.SuspectTimeout)

	target, seeded := a.nextTarget()
	if target != "" {
		d, err := a.cfg.Probe(ctx, target, KindPing, a.view.Digest())
		if err == nil {
			if a.view.Merge(d, now) {
				changed = true
			}
			if a.view.ObserveAlive(target, now) {
				changed = true
			}
		} else if !seeded {
			// A seed that does not answer is not a member yet — there is
			// nothing to suspect. A member that does not answer is.
			if a.view.MarkSuspect(target, now) {
				changed = true
			}
		}
	}
	if changed {
		a.notify()
	}
}

// nextTarget picks who to probe this period: round-robin over the sorted
// alive+suspect members (excluding self); when there are none, cycle
// through the seeds not already in the view (initial join, or retry
// after every peer died — the solo-degradation path keeps gossiping so a
// healed partition re-forms the fleet).
func (a *Agent) nextTarget() (addr string, seeded bool) {
	var targets []string
	d := a.view.Digest()
	known := make(map[string]bool, len(d.Entries))
	for _, e := range d.Entries {
		known[e.ID] = true
		if e.ID != a.cfg.Self && e.Status != Dead {
			targets = append(targets, e.ID)
		}
	}
	if len(targets) == 0 {
		for _, s := range a.cfg.Seeds {
			if s != a.cfg.Self && !known[s] {
				targets = append(targets, s)
			}
		}
		if len(targets) == 0 {
			return "", false
		}
		seeded = true
	}
	sort.Strings(targets)
	a.rrNext++
	return targets[a.rrNext%len(targets)], seeded
}

// HandleDigest is the receive path: the serving glue calls it for every
// incoming membership frame (ping, gossip or leave — the kinds differ
// only in intent; a leave simply carries the sender marked dead) and
// replies with the returned digest as member-ack.
func (a *Agent) HandleDigest(d Digest) Digest {
	if a.view.Merge(d, a.cfg.Now()) {
		a.notify()
	}
	return a.view.Digest()
}

// Leave marks this node dead at a bumped incarnation and broadcasts the
// notice to every member it believes alive, best-effort within ctx. The
// caller drains its home keys (cache.Migrator.Drain) before or after —
// order does not matter, since peers stop routing to us only once they
// merge the leave.
func (a *Agent) Leave(ctx context.Context) {
	d := a.view.Leave(a.cfg.Now())
	a.notify()
	for _, e := range d.Entries {
		if e.ID == a.cfg.Self || e.Status != Alive {
			continue
		}
		if ctx.Err() != nil {
			return
		}
		// Best effort: a peer we cannot reach will suspect and expire us
		// on its own schedule.
		_, _ = a.cfg.Probe(ctx, e.ID, KindLeave, d)
	}
}

func (a *Agent) notify() {
	if a.cfg.OnChange != nil {
		a.cfg.OnChange()
	}
}
