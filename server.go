package coic

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/core"
	"github.com/edge-immersion/coic/internal/obs"
)

// This file is the v2 deployment surface: edge and cloud servers built
// from functional options and driven by a context —
// NewEdgeServer(opts...).Serve(ctx) — replacing the positional
// ServeEdgeWith/ServeEdgeFederated/ServeCloudWith sprawl. Cancelling the
// serve context shuts the server down gracefully: the listener closes,
// in-flight requests drain, replies flush, connections close, Serve
// returns nil.

// ServerOption configures a Server built by NewEdgeServer or
// NewCloudServer.
type ServerOption func(*serverConfig) error

type serverConfig struct {
	listener net.Listener
	addr     string

	params    Params
	paramsSet bool

	cloudAddr    string
	cloudShape   ShapeSpec
	self         string
	peers        []string
	gossip       bool
	seeds        []string
	replication  int
	workers      int
	queueDepth   int
	batch        int
	batchSlack   time.Duration
	fetchTimeout time.Duration
	maxUpstream  int

	slowThreshold time.Duration
	slowSet       bool
	logger        *slog.Logger

	tenants map[string]TenantConfig

	// edgeOnly names edge-specific options applied to a cloud server, an
	// error surfaced at Serve.
	edgeOnly []string
}

func (c *serverConfig) markEdgeOnly(name string) { c.edgeOnly = append(c.edgeOnly, name) }

// WithListener serves on an existing listener instead of binding one;
// useful for tests and for callers that want the port before serving.
func WithListener(ln net.Listener) ServerOption {
	return func(c *serverConfig) error { c.listener = ln; return nil }
}

// WithListenAddr binds a TCP listener on addr at Serve time (defaults:
// ":9091" for edges, ":9090" for clouds).
func WithListenAddr(addr string) ServerOption {
	return func(c *serverConfig) error { c.addr = addr; return nil }
}

// WithServeParams overrides the reproduction parameters the server runs
// with (DefaultParams() otherwise).
func WithServeParams(p Params) ServerOption {
	return func(c *serverConfig) error { c.params = p; c.paramsSet = true; return nil }
}

// WithCloud points an edge at the cloud tier it forwards misses to
// (default "localhost:9090"). Edge servers only.
func WithCloud(addr string) ServerOption {
	return func(c *serverConfig) error { c.markEdgeOnly("WithCloud"); c.cloudAddr = addr; return nil }
}

// WithCloudShape conditions the edge→cloud uplink with a tc-style spec
// (the B_E→C knob). Edge servers only; the spec is validated at Serve.
func WithCloudShape(spec ShapeSpec) ServerOption {
	return func(c *serverConfig) error { c.markEdgeOnly("WithCloudShape"); c.cloudShape = spec; return nil }
}

// WithFederation joins the edge to a cache federation: self is this
// edge's advertised, dialable address — its federation identity, which
// must appear verbatim in every peer's peer list — and peers are the
// other members. Edge servers only.
func WithFederation(self string, peers ...string) ServerOption {
	return func(c *serverConfig) error {
		c.markEdgeOnly("WithFederation")
		c.self = self
		c.peers = append([]string(nil), peers...)
		return nil
	}
}

// WithGossip joins the edge to a dynamically-membered federation: self
// is this edge's advertised, dialable address — its gossip identity and
// ring position — and seeds are addresses contacted for the initial join
// (any live member works; listing self is fine, it is skipped). Unlike
// WithFederation the fleet is discovered, not declared: members learn of
// joins, failures and graceful leaves via gossip, rebuild the
// consistent-hash ring on every change, and migrate cached keys whose
// ownership moved. A seed node boots with no seeds and waits to be
// found. Mutually exclusive with WithFederation. Edge servers only.
func WithGossip(self string, seeds ...string) ServerOption {
	return func(c *serverConfig) error {
		c.markEdgeOnly("WithGossip")
		c.self = self
		c.gossip = true
		c.seeds = append([]string(nil), seeds...)
		return nil
	}
}

// WithReplication sets the federation's replication factor: every
// published cache entry is copied to the first rf owners on the ring, so
// one member's failure leaves rf-1 live replicas (reads fall over to
// them, and read-repair restores the home once it changes). 0 or 1 is
// home-only. Applies to both WithFederation and WithGossip topologies.
// Edge servers only.
func WithReplication(rf int) ServerOption {
	return func(c *serverConfig) error {
		c.markEdgeOnly("WithReplication")
		c.replication = rf
		return nil
	}
}

// WithWorkers bounds concurrent request processing per connection
// (core.DefaultWorkers when unset).
func WithWorkers(n int) ServerOption {
	return func(c *serverConfig) error { c.workers = n; return nil }
}

// WithQueueDepth bounds requests buffered awaiting a worker before the
// server sheds load with an overloaded error (core.DefaultQueueDepth
// when unset).
func WithQueueDepth(n int) ServerOption {
	return func(c *serverConfig) error { c.queueDepth = n; return nil }
}

// WithBatch lets a worker execute up to n compatible exec requests as
// one batch (cloud: a single batched DNN pass; edge: concurrent
// dispatch that coalesces identical descriptors). Zero or one disables
// batching. Batching is server-local — the wire protocol and reply
// ordering are unchanged.
func WithBatch(n int) ServerOption {
	return func(c *serverConfig) error { c.batch = n; return nil }
}

// WithBatchSlack lets a worker that picked up a best-effort exec
// request wait up to d for more batchable arrivals (capped by the
// head request's deadline). Interactive requests never wait — their
// batch is whatever was already queued. Meaningful only with WithBatch.
func WithBatchSlack(d time.Duration) ServerOption {
	return func(c *serverConfig) error { c.batchSlack = d; return nil }
}

// WithFetchTimeout bounds one edge→cloud fetch end to end, failing any
// coalesced waiters fast when the cloud hangs. Edge servers only.
func WithFetchTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) error { c.markEdgeOnly("WithFetchTimeout"); c.fetchTimeout = d; return nil }
}

// WithMaxUpstream caps concurrent fetches on the edge's multiplexed
// cloud connection; raise it in lockstep with the cloud's workers/queue.
// Edge servers only.
func WithMaxUpstream(n int) ServerOption {
	return func(c *serverConfig) error { c.markEdgeOnly("WithMaxUpstream"); c.maxUpstream = n; return nil }
}

// DefaultTenant is the tenant identity of every connection that does
// not authenticate an explicit one: tenantless NewClient dials and
// legacy (pre-versioned-hello) clients. Per-tenant maps (ServerStats,
// SystemStats, metric labels) file their traffic under this name.
const DefaultTenant = core.DefaultTenant

// TenantConfig describes one tenant's share of a server for
// WithTenantQuota. The zero value means "no limits" — no token
// required, unlimited admission, weight 1, unbounded cache share —
// which is exactly what tenants without any configuration get, so
// rationing one tenant never locks the others out.
type TenantConfig struct {
	// Token, when nonempty, is the shared secret the tenant's clients
	// must present via WithTenant. Tenants without a token authenticate
	// by name alone.
	Token string
	// Rate is the sustained admission rate in requests per second; 0
	// leaves the tenant unmetered.
	Rate float64
	// Burst is the token-bucket capacity in requests; 0 with a nonzero
	// Rate defaults to the larger of 1 and one second's worth of Rate.
	Burst int
	// Weight is the tenant's fair-share weight within each service
	// class: under contention a weight-4 tenant drains four queued
	// requests for every one of a weight-1 tenant. <= 0 means 1.
	Weight int
	// CacheBytes bounds the tenant's resident bytes in the edge cache;
	// 0 shares the global capacity unbounded. Edge servers only (the
	// cloud has no IC cache); ignored on clouds.
	CacheBytes int64
	// SceneMembers caps how many shared-scene members (joined
	// connections, summed across the tenant's rooms) the tenant may hold
	// at once; 0 means unlimited. Scene publish rates need no extra knob
	// — every publish spends a token from the same bucket as any other
	// request (Rate/Burst). Edge servers only; ignored on clouds.
	SceneMembers int
}

// WithTenantQuota installs (or replaces) tenant's limits: admission
// rate, fair-share weight, cache share, and optionally a token its
// clients must present. An empty tenant names the default tenant, which
// is where tenantless and legacy clients land. Tenants never named by
// any option run unlimited.
func WithTenantQuota(tenant string, cfg TenantConfig) ServerOption {
	return func(c *serverConfig) error {
		if c.tenants == nil {
			c.tenants = make(map[string]TenantConfig)
		}
		c.tenants[tenant] = cfg
		return nil
	}
}

// WithTenantWeight sets only tenant's fair-share weight, merging with
// any limits already configured for it. Shorthand for the common case
// of weighted sharing without admission caps.
func WithTenantWeight(tenant string, weight int) ServerOption {
	return func(c *serverConfig) error {
		if c.tenants == nil {
			c.tenants = make(map[string]TenantConfig)
		}
		cfg := c.tenants[tenant]
		cfg.Weight = weight
		c.tenants[tenant] = cfg
		return nil
	}
}

// ParseTenantQuota parses the daemons' -tenant-quota flag syntax,
// "name:key=value[,key=value...]", into the tenant's name and config.
// Keys: token (string), rate (requests/sec, float), burst (requests),
// weight (fair-share weight), cache (resident cache bytes), members
// (concurrent scene members). A bare "name" with no colon configures a
// tenant with no limits — useful to require the name to exist without
// rationing it.
//
//	-tenant-quota "acme:token=s3cret,rate=100,burst=20,weight=4"
//	-tenant-quota "guest:rate=5,cache=16777216,members=8"
func ParseTenantQuota(spec string) (string, TenantConfig, error) {
	name, args, hasArgs := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", TenantConfig{}, fmt.Errorf("coic: tenant quota %q: empty tenant name", spec)
	}
	var cfg TenantConfig
	if !hasArgs {
		return name, cfg, nil
	}
	for _, kv := range strings.Split(args, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return "", TenantConfig{}, fmt.Errorf("coic: tenant quota %q: %q is not key=value", spec, kv)
		}
		var err error
		switch key {
		case "token":
			cfg.Token = val
		case "rate":
			cfg.Rate, err = strconv.ParseFloat(val, 64)
		case "burst":
			cfg.Burst, err = strconv.Atoi(val)
		case "weight":
			cfg.Weight, err = strconv.Atoi(val)
		case "cache":
			cfg.CacheBytes, err = strconv.ParseInt(val, 10, 64)
		case "members":
			cfg.SceneMembers, err = strconv.Atoi(val)
		default:
			return "", TenantConfig{}, fmt.Errorf("coic: tenant quota %q: unknown key %q", spec, key)
		}
		if err != nil {
			return "", TenantConfig{}, fmt.Errorf("coic: tenant quota %q: %s: %v", spec, key, err)
		}
	}
	return name, cfg, nil
}

// WithSlowRequestThreshold sets the latency above which a successful
// request is captured in the /debug/requests ring (failed requests are
// always captured). The default is 1s; zero or negative keeps successes
// out of the ring entirely.
func WithSlowRequestThreshold(d time.Duration) ServerOption {
	return func(c *serverConfig) error { c.slowThreshold = d; c.slowSet = true; return nil }
}

// WithLogger routes the server's structured logs — currently slow-request
// warnings — through l instead of slog.Default().
func WithLogger(l *slog.Logger) ServerOption {
	return func(c *serverConfig) error { c.logger = l; return nil }
}

// Server is a CoIC tier (edge or cloud) assembled from options. Build it
// with NewEdgeServer or NewCloudServer and run it with Serve; option
// errors are deferred to Serve so construction chains.
type Server struct {
	role string // "edge" or "cloud"
	cfg  serverConfig
	err  error

	reg  *obs.Registry
	rlog *obs.RequestLog

	mu    sync.Mutex
	ln    net.Listener
	edge  *core.EdgeServer
	cloud *core.CloudServer
}

// NewEdgeServer assembles the mobile-edge tier: the IC cache plus miss
// forwarding to the cloud, optionally federated with peer edges.
func NewEdgeServer(opts ...ServerOption) *Server {
	s := &Server{role: "edge", cfg: serverConfig{addr: ":9091", cloudAddr: "localhost:9090"}}
	s.apply(opts)
	s.cfg.edgeOnly = nil // every edge-only option is legal here
	s.initObs()
	return s
}

// NewCloudServer assembles the cloud tier: the full recognition DNN, the
// 3D model repository and the VR panorama source.
func NewCloudServer(opts ...ServerOption) *Server {
	s := &Server{role: "cloud", cfg: serverConfig{addr: ":9090"}}
	s.apply(opts)
	if s.err == nil && len(s.cfg.edgeOnly) > 0 {
		s.err = fmt.Errorf("coic: %v are edge-only options, not valid for a cloud server", s.cfg.edgeOnly)
	}
	s.initObs()
	return s
}

// initObs builds the live metrics registry and the slow-request ring.
// Both exist from construction so OpsHandler works before Serve (the
// scrape just reports an idle server).
func (s *Server) initObs() {
	slow := s.cfg.slowThreshold
	if !s.cfg.slowSet {
		slow = time.Second
	}
	s.reg = obs.NewRegistry()
	s.rlog = obs.NewRequestLog(128, slow, s.cfg.logger)
}

// tenantPolicy builds the admission policy from WithTenantQuota /
// WithTenantWeight options, or nil — the open single-tenant policy —
// when none were given, keeping untenanted servers on the exact
// pre-tenant fast path.
func (s *Server) tenantPolicy() *core.TenantPolicy {
	if len(s.cfg.tenants) == 0 {
		return nil
	}
	p := core.NewTenantPolicy(nil)
	for t, cfg := range s.cfg.tenants {
		p.Set(t, core.TenantLimit{
			Token:        cfg.Token,
			Rate:         cfg.Rate,
			Burst:        cfg.Burst,
			Weight:       cfg.Weight,
			CacheBytes:   cfg.CacheBytes,
			SceneMembers: cfg.SceneMembers,
		})
	}
	return p
}

func (s *Server) apply(opts []ServerOption) {
	for _, opt := range opts {
		if err := opt(&s.cfg); err != nil && s.err == nil {
			s.err = err
		}
	}
}

// Addr reports the bound listen address once Serve is running (nil
// before). With WithListener the caller already holds the address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ServerStats counts a server's admission and scheduling decisions plus
// (edges only) its upstream traffic.
type ServerStats struct {
	// CloudFetches is how many upstream round trips the edge issued —
	// the denominator of coalescing. Zero for cloud servers.
	CloudFetches uint64
	// Overloads is how many requests admission control rejected with an
	// overloaded error (the queue was full of live work).
	Overloads uint64
	// DeadlineSheds is how many queued requests were dropped unexecuted
	// because their wall-clock deadline passed in the queue — no worker
	// time and no upstream fetch was spent on them.
	DeadlineSheds uint64
	// AdmittedInteractive / AdmittedBestEffort count requests entering
	// the scheduler per service class.
	AdmittedInteractive uint64
	AdmittedBestEffort  uint64
	// Batches counts multi-request batches executed (batches of one are
	// not counted); BatchedRequests is the total requests they carried.
	// Both are zero unless WithBatch enabled batching.
	Batches         uint64
	BatchedRequests uint64
	// QuotaRejections is how many requests per-tenant admission quotas
	// rejected, summed over tenants. Zero unless WithTenantQuota set a
	// rate for some tenant.
	QuotaRejections uint64
	// SceneRooms / SceneMembers are the live shared-scene rooms hosted on
	// the edge and their joined members; ScenePublishes counts scene
	// writes applied since start. All zero for cloud servers (scenes are
	// edge-hosted).
	SceneRooms     int
	SceneMembers   int
	ScenePublishes uint64
	// RingVersion is the federation ring's node-local version (0 when
	// standalone or broadcast); MembersAlive counts fleet members this
	// edge believes alive, itself included (a declared static federation
	// reports its full ring; a standalone edge reports 1); MigratedKeys
	// counts cached keys re-homed by migration sweeps and the
	// decommission drain (gossip topologies only). All zero for cloud
	// servers.
	RingVersion  uint64
	MembersAlive int
	MigratedKeys uint64
	// Tenants breaks admissions and quota rejections down by tenant.
	// Tenantless deployments see a single "default" entry.
	Tenants map[string]TenantStats
}

// TenantStats is one tenant's slice of a server's admission ledger.
type TenantStats struct {
	AdmittedInteractive uint64
	AdmittedBestEffort  uint64
	QuotaRejections     uint64
}

// tenantStats converts the scheduler's per-tenant ledger to the public
// shape.
func tenantStats(counts map[string]core.TenantCounters) map[string]TenantStats {
	out := make(map[string]TenantStats, len(counts))
	for t, tc := range counts {
		out[t] = TenantStats{
			AdmittedInteractive: tc.Admitted[int(QoSInteractive)],
			AdmittedBestEffort:  tc.Admitted[int(QoSBestEffort)],
			QuotaRejections:     tc.QuotaRejections,
		}
	}
	return out
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	es, cs := s.edge, s.cloud
	s.mu.Unlock()
	switch {
	case es != nil:
		rooms, members, publishes := es.SceneStats()
		alive, _, _ := es.MemberCounts()
		return ServerStats{
			RingVersion:         es.RingVersion(),
			MembersAlive:        alive,
			MigratedKeys:        es.MigratedKeys(),
			CloudFetches:        es.CloudFetches(),
			Overloads:           es.Overloads(),
			DeadlineSheds:       es.DeadlineSheds(),
			AdmittedInteractive: es.Admitted(QoSInteractive),
			AdmittedBestEffort:  es.Admitted(QoSBestEffort),
			Batches:             es.Batches(),
			BatchedRequests:     es.BatchedRequests(),
			QuotaRejections:     es.QuotaRejections(),
			SceneRooms:          rooms,
			SceneMembers:        members,
			ScenePublishes:      publishes,
			Tenants:             tenantStats(es.TenantCounts()),
		}
	case cs != nil:
		return ServerStats{
			Overloads:           cs.Overloads(),
			DeadlineSheds:       cs.DeadlineSheds(),
			AdmittedInteractive: cs.Admitted(QoSInteractive),
			AdmittedBestEffort:  cs.Admitted(QoSBestEffort),
			Batches:             cs.Batches(),
			BatchedRequests:     cs.BatchedRequests(),
			QuotaRejections:     cs.QuotaRejections(),
			Tenants:             tenantStats(cs.TenantCounts()),
		}
	default:
		return ServerStats{}
	}
}

// Serve binds (unless WithListener supplied one) and serves until ctx is
// cancelled or the listener fails. Cancellation is graceful shutdown:
// in-flight requests drain and Serve returns nil. Serve may be called
// once per Server.
func (s *Server) Serve(ctx context.Context) error {
	if s.err != nil {
		return s.err
	}
	p := s.cfg.params
	if !s.cfg.paramsSet {
		p = DefaultParams()
	}
	ln := s.cfg.listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", s.cfg.addr)
		if err != nil {
			return fmt.Errorf("coic: %s server: %w", s.role, err)
		}
		defer ln.Close()
	}
	defer func() {
		// The listener is the readiness signal; with Serve gone the
		// server must probe not-ready again.
		s.mu.Lock()
		s.ln = nil
		s.mu.Unlock()
	}()
	sobs := core.NewServerObs(s.reg, s.rlog)
	tenants := s.tenantPolicy()

	if s.role == "cloud" {
		srv := &core.CloudServer{
			Cloud:      core.NewCloud(p),
			Workers:    s.cfg.workers,
			QueueDepth: s.cfg.queueDepth,
			Batch:      s.cfg.batch,
			BatchSlack: s.cfg.batchSlack,
			Tenants:    tenants,
			Obs:        sobs,
		}
		s.registerSchedBridges(srv.Admitted, srv.DeadlineSheds, srv.Overloads)
		s.mu.Lock()
		s.ln = ln
		s.cloud = srv
		s.mu.Unlock()
		return srv.ServeContext(ctx, ln)
	}

	wrap, err := s.cfg.cloudShape.wrapper()
	if err != nil {
		return err
	}
	srv := &core.EdgeServer{
		Edge:         core.NewEdge(p),
		CloudAddr:    s.cfg.cloudAddr,
		WrapCloud:    wrap,
		Workers:      s.cfg.workers,
		QueueDepth:   s.cfg.queueDepth,
		Batch:        s.cfg.batch,
		BatchSlack:   s.cfg.batchSlack,
		FetchTimeout: s.cfg.fetchTimeout,
		MaxUpstream:  s.cfg.maxUpstream,
		Tenants:      tenants,
		Obs:          sobs,
	}
	for t, capBytes := range tenants.CacheShares() {
		srv.Edge.Cache.SetTenantCap(t, capBytes)
	}
	srv.Replication = s.cfg.replication
	if s.cfg.gossip && len(s.cfg.peers) > 0 {
		return fmt.Errorf("coic: WithFederation and WithGossip are mutually exclusive — declare the fleet or discover it, not both")
	}
	if s.cfg.gossip {
		if err := srv.SetupGossip(s.cfg.self, s.cfg.seeds); err != nil {
			return err
		}
	} else if len(s.cfg.peers) > 0 {
		if err := srv.SetupFederation(s.cfg.self, s.cfg.peers); err != nil {
			return err
		}
	}
	s.registerSchedBridges(srv.Admitted, srv.DeadlineSheds, srv.Overloads)
	s.reg.CounterFunc("coic_cloud_fetches_total",
		"Upstream edge-to-cloud round trips issued (after coalescing).",
		func() float64 { return float64(srv.CloudFetches()) })
	s.reg.GaugeFunc("coic_cache_entries",
		"Entries resident in the edge IC cache.",
		func() float64 { st, _ := srv.Edge.Cache.Stats(); return float64(st.Entries) })
	s.reg.GaugeFunc("coic_cache_bytes",
		"Bytes resident in the edge IC cache.",
		func() float64 { st, _ := srv.Edge.Cache.Stats(); return float64(st.BytesUsed) })
	s.reg.GaugeFunc("coic_scene_members",
		"Connections currently joined to shared scenes on this edge.",
		func() float64 { _, members, _ := srv.SceneStats(); return float64(members) })
	s.reg.GaugeFunc("coic_scene_rooms",
		"Shared-scene rooms currently live on this edge.",
		func() float64 { rooms, _, _ := srv.SceneStats(); return float64(rooms) })
	s.reg.CounterFunc("coic_scene_publish_total",
		"Shared-scene writes applied and fanned out since start.",
		func() float64 { _, _, publishes := srv.SceneStats(); return float64(publishes) })
	s.reg.GaugeFunc("coic_ring_version",
		"Version of the federation consistent-hash ring. Node-local and monotonic; 0 when standalone or on the broadcast topology.",
		func() float64 { return float64(srv.RingVersion()) })
	s.reg.GaugeFunc("coic_member_alive",
		"Federation members this edge believes alive (itself included).",
		func() float64 { alive, _, _ := srv.MemberCounts(); return float64(alive) })
	s.reg.GaugeFunc("coic_member_suspect",
		"Federation members this edge suspects failed (awaiting refutation or expiry).",
		func() float64 { _, suspect, _ := srv.MemberCounts(); return float64(suspect) })
	s.reg.GaugeFunc("coic_member_dead",
		"Federation members this edge has declared dead.",
		func() float64 { _, _, dead := srv.MemberCounts(); return float64(dead) })
	s.reg.CounterFunc("coic_migration_keys_total",
		"Cached keys re-homed by migration sweeps and the decommission drain.",
		func() float64 { return float64(srv.MigratedKeys()) })
	for t := range s.cfg.tenants {
		name := t
		if name == "" {
			name = core.DefaultTenant
		}
		s.reg.GaugeFunc("coic_tenant_cache_bytes",
			"Bytes resident in the edge IC cache attributed to the tenant.",
			func() float64 { return float64(srv.Edge.Cache.StatsSnapshot().Tenants[name].Bytes) },
			obs.L("tenant", name))
	}
	s.mu.Lock()
	s.ln = ln
	s.edge = srv
	s.mu.Unlock()
	return srv.ServeContext(ctx, ln)
}

// registerSchedBridges exposes the scheduler's existing counters as
// scrape-time metrics. They are read on demand rather than double
// counted on the hot path.
func (s *Server) registerSchedBridges(admitted func(QoS) uint64, sheds, overloads func() uint64) {
	for _, class := range []QoS{QoSBestEffort, QoSInteractive} {
		class := class
		s.reg.CounterFunc("coic_sched_admitted_total",
			"Requests admitted into the per-connection scheduler by service class.",
			func() float64 { return float64(admitted(class)) },
			obs.L("class", class.String()))
	}
	s.reg.CounterFunc("coic_sched_deadline_sheds_total",
		"Queued requests dropped unexecuted because their deadline passed.",
		func() float64 { return float64(sheds()) })
	s.reg.CounterFunc("coic_sched_overloads_total",
		"Requests rejected by admission control with an overloaded error.",
		func() float64 { return float64(overloads()) })
}

// OpsHandler returns the live operations plane: Prometheus text metrics
// at /metrics, liveness at /healthz, readiness at /readyz (see Ready),
// the slow/failed request ring at /debug/requests, and net/http/pprof
// under /debug/pprof/. Mount it on a sidecar HTTP listener — the CoIC
// wire protocol and the ops plane never share a port.
func (s *Server) OpsHandler() http.Handler {
	return obs.Handler(s.reg, s.Ready, s.rlog)
}

// Ready reports whether the server can usefully take traffic: the wire
// listener must be up, and an edge must additionally be able to reach
// its cloud tier (a TCP dial bounded by ctx). A cloud server is ready as
// soon as it listens.
func (s *Server) Ready(ctx context.Context) error {
	s.mu.Lock()
	ln, role, cloudAddr := s.ln, s.role, s.cfg.cloudAddr
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("%s server not serving", role)
	}
	if role != "edge" || cloudAddr == "" {
		return nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", cloudAddr)
	if err != nil {
		return fmt.Errorf("cloud link down: %w", err)
	}
	conn.Close()
	return nil
}

// DialContext connects a mobile client to a running edge, bounded by
// ctx. clientShape conditions the client→edge link (the B_M→E knob).
// The returned Client's *Context methods honour per-request contexts:
// cancelling one sends a MsgCancel frame and the connection stays
// usable.
//
// Deprecated: use NewClient with DialOptions (WithDialParams,
// WithDialMode, WithDialShape), which also opens the streaming surface
// (Client.Stream).
func DialContext(ctx context.Context, edgeAddr string, p Params, mode Mode, clientShape ShapeSpec) (*Client, error) {
	return NewClient(ctx, edgeAddr,
		WithDialParams(p), WithDialMode(mode), WithDialShape(clientShape))
}
