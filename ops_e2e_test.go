package coic

// End-to-end tests for the live operations plane: boot a real cloud+edge
// stack, drive QoS traffic through a stream, then scrape the edge's
// OpsHandler the way Prometheus would and assert the counters agree with
// ServerStats. Readiness is exercised by killing the cloud under a live
// edge.

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/edge-immersion/coic/internal/obs"
)

// scrape GETs path from the ops server and returns status and body.
func scrape(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// parseMetrics indexes a Prometheus text payload by full sample name
// (labels included, exactly as rendered).
func parseMetrics(t *testing.T, payload string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(payload, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestOpsMetricsEndToEnd(t *testing.T) {
	edge, addr, stop := startStreamStack(t, 0, 2, 32)
	defer stop()

	ops := httptest.NewServer(edge.OpsHandler())
	defer ops.Close()

	cli := streamClient(t, addr)
	defer cli.Close()
	ctx := context.Background()
	st, err := cli.Stream(ctx, WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	results := st.Results()

	// Three best-effort + three interactive panorama fetches, distinct
	// frames so each one misses and pays a cloud fetch.
	const perClass = 3
	for i := 0; i < 2*perClass; i++ {
		req := PanoTask("ops-video", i, Viewport{FOV: 1.5})
		if i%2 == 1 {
			req = req.WithQoS(QoSInteractive)
		}
		if _, err := st.Submit(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*perClass; i++ {
		if comp := <-results; comp.Err != nil {
			t.Fatalf("completion %d failed: %v", i, comp.Err)
		}
	}

	// The worker accounts a request after handing its reply to the
	// writer, so the scrape can trail the client's completion by a
	// moment — poll until the counters converge.
	var metrics map[string]float64
	waitForStats(t, "outcome counters to converge", func() bool {
		status, body := scrape(t, ops.URL, "/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics status = %d", status)
		}
		metrics = parseMetrics(t, body)
		return metrics[`coic_requests_total{tenant="default",class="best-effort",outcome="ok"}`] == perClass &&
			metrics[`coic_requests_total{tenant="default",class="interactive",outcome="ok"}`] == perClass
	})

	// The scrape must agree with the server's own counters.
	stats := edge.Stats()
	for sample, want := range map[string]float64{
		`coic_sched_admitted_total{class="best-effort"}`:                               float64(stats.AdmittedBestEffort),
		`coic_sched_admitted_total{class="interactive"}`:                               float64(stats.AdmittedInteractive),
		`coic_sched_deadline_sheds_total`:                                              float64(stats.DeadlineSheds),
		`coic_sched_overloads_total`:                                                   float64(stats.Overloads),
		`coic_cloud_fetches_total`:                                                     float64(stats.CloudFetches),
		`coic_requests_total{tenant="default",class="best-effort",outcome="deadline"}`: 0,
		`coic_connections_total`:                                                       1,
		`coic_connections_active`:                                                      1,
	} {
		if got, ok := metrics[sample]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", sample, got, ok, want)
		}
	}

	// Every pipeline stage histogram observed the traffic: +Inf bucket
	// and _count are nonzero, and cloud_fetch matches the fetch counter.
	for _, stage := range []string{"decode", "cache_lookup", "sched_wait", "exec", "cloud_fetch", "reply_write"} {
		inf := `coic_stage_duration_seconds_bucket{stage="` + stage + `",le="+Inf"}`
		if metrics[inf] == 0 {
			t.Errorf("stage %q histogram recorded nothing", stage)
		}
		count := `coic_stage_duration_seconds_count{stage="` + stage + `"}`
		if metrics[count] != metrics[inf] {
			t.Errorf("stage %q _count = %v, want +Inf bucket %v", stage, metrics[count], metrics[inf])
		}
	}
	if got := metrics[`coic_stage_duration_seconds_count{stage="cloud_fetch"}`]; got != float64(stats.CloudFetches) {
		t.Errorf("cloud_fetch histogram count = %v, want CloudFetches %d", got, stats.CloudFetches)
	}
	if got := metrics[`coic_stage_duration_seconds_count{stage="exec"}`]; got != 2*perClass {
		t.Errorf("exec histogram count = %v, want %d", got, 2*perClass)
	}

	// The payload itself must be exposition-clean.
	_, body := scrape(t, ops.URL, "/metrics")
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Errorf("metrics payload fails lint: %v", problems)
	}

	if status, body := scrape(t, ops.URL, "/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", status, body)
	}
	if status, _ := scrape(t, ops.URL, "/readyz"); status != http.StatusOK {
		t.Errorf("/readyz = %d, want 200 with the cloud up", status)
	}
}

// TestOpsReadinessFlipsWhenCloudDrops boots the stack with the cloud on
// its own lifetime, confirms the edge probes ready, then kills the cloud
// and watches /readyz flip to 503: the edge is alive (healthz) but
// cannot serve misses, which is exactly what a load balancer must see.
func TestOpsReadinessFlipsWhenCloudDrops(t *testing.T) {
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cloudCtx, stopCloud := context.WithCancel(ctx)
	defer stopCloud()
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(cloudCtx)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
	)
	go edge.Serve(ctx)

	ops := httptest.NewServer(edge.OpsHandler())
	defer ops.Close()

	// Ready once Serve has registered the listener and the cloud accepts.
	waitForStats(t, "the edge to probe ready", func() bool {
		status, _ := scrape(t, ops.URL, "/readyz")
		return status == http.StatusOK
	})

	// Kill the cloud; its listener closes and the edge's dial probe fails.
	stopCloud()
	waitForStats(t, "readiness to flip after the cloud died", func() bool {
		status, body := scrape(t, ops.URL, "/readyz")
		return status == http.StatusServiceUnavailable && strings.Contains(body, "cloud link down")
	})

	// Liveness is unaffected: the edge process itself is healthy.
	if status, _ := scrape(t, ops.URL, "/healthz"); status != http.StatusOK {
		t.Errorf("/healthz = %d after cloud death, want 200", status)
	}
}
