package coic

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// testConfig shrinks payloads so public-API tests stay fast (mirrors
// internal/core testParams).
func testConfig() Config {
	p := DefaultParams()
	p.CameraW, p.CameraH = 128, 128
	p.DNNInput = 32
	p.PanoWidth = 256
	p.MobileGFLOPS = 28
	return Config{Params: p}
}

func TestSystemQuickPath(t *testing.T) {
	sys, err := NewFromConfig(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b1, res1, err := sys.Recognize(0, ClassStopSign, 1, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Label == "" || res1.AnnotationModelID == "" {
		t.Fatalf("empty result %+v", res1)
	}
	sys.Advance(time.Second)
	b2, res2, err := sys.Recognize(0, ClassStopSign, 2, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Label != res1.Label {
		t.Fatal("labels diverge across cache hit")
	}
	if b2.Total() >= b1.Total() {
		t.Fatalf("second request (%v) not faster than first (%v)", b2.Total(), b1.Total())
	}
	hitRatio, used, entries := sys.CacheStats()
	if hitRatio <= 0 || used <= 0 || entries == 0 {
		t.Fatalf("cache stats: %v %v %v", hitRatio, used, entries)
	}
}

func TestSystemRenderAndPano(t *testing.T) {
	sys, err := NewFromConfig(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Render(0, AnnotationModelID(ClassCar), ModeCoIC); err != nil {
		t.Fatal(err)
	}
	sys.Advance(time.Second)
	b, err := sys.Render(0, AnnotationModelID(ClassCar), ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome.String() != "exact" {
		t.Fatalf("outcome %v", b.Outcome)
	}
	if _, err := sys.Pano(0, "v", 1, Viewport{FOV: 1.5}, ModeCoIC); err != nil {
		t.Fatal(err)
	}
}

func TestMultiClientSharing(t *testing.T) {
	cfg := testConfig()
	cfg.Clients = 3
	sys, err := NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Recognize(0, ClassDog, 1, ModeCoIC); err != nil {
		t.Fatal(err)
	}
	sys.Advance(time.Second)
	b, _, err := sys.Recognize(2, ClassDog, 2, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome.String() == "miss" {
		t.Fatal("user 2 did not benefit from user 0's work")
	}
	if _, _, err := sys.Recognize(9, ClassDog, 3, ModeCoIC); err == nil {
		t.Fatal("out-of-range client accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewFromConfig(Config{CachePolicy: "belady"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewFromConfig(Config{Index: "faiss"}); err == nil {
		t.Fatal("unknown index accepted")
	}
	for _, policy := range []string{"lru", "lfu", "fifo", "gdsf"} {
		cfg := testConfig()
		cfg.CachePolicy = policy
		if _, err := NewFromConfig(cfg); err != nil {
			t.Fatalf("policy %s rejected: %v", policy, err)
		}
	}
	cfg := testConfig()
	cfg.Index = "lsh"
	if _, err := NewFromConfig(cfg); err != nil {
		t.Fatalf("lsh index rejected: %v", err)
	}
}

func TestLSHIndexSystemStillHits(t *testing.T) {
	cfg := testConfig()
	cfg.Index = "lsh"
	sys, err := NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Recognize(0, ClassTree, 1, ModeCoIC); err != nil {
		t.Fatal(err)
	}
	sys.Advance(time.Second)
	b, _, err := sys.Recognize(0, ClassTree, 2, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome.String() == "miss" {
		t.Fatal("LSH-backed cache missed a near-duplicate")
	}
}

func TestTablesRender(t *testing.T) {
	tab := RunThresholdSweep(testConfig().Params, []float64{0.05, 0.12, 0.3}, 4)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "threshold") {
		t.Fatalf("table output:\n%s", buf.String())
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "true_hit_rate") {
		t.Fatal("CSV missing header")
	}
}

func TestBurstTablePublicAPI(t *testing.T) {
	tab, err := RunBurst(testConfig().Params, []int{4}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One serial and one coalesce row; the coalesce row must show the
	// saved fetches.
	if !strings.Contains(out, "serial") || !strings.Contains(out, "coalesce") {
		t.Fatalf("burst table missing modes:\n%s", out)
	}
}

func TestIndexAblationTable(t *testing.T) {
	tab := RunIndexAblation(32, []int{100, 500}, 20, 1)
	rows := tab.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestFinegrainedTable(t *testing.T) {
	p := testConfig().Params
	tab := RunFinegrained(p, []int{2}, 10)
	rows := tab.Rows()
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestServeAndDialPublicAPI(t *testing.T) {
	p := testConfig().Params
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()
	go ServeCloud(cloudLn, p)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edgeLn.Close()
	go ServeEdge(edgeLn, p, cloudLn.Addr().String(), "")

	cli, err := Dial(edgeLn.Addr().String(), p, ModeCoIC, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, lat, err := cli.Recognize(ClassAvatar, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label == "" || lat <= 0 {
		t.Fatalf("result %+v lat %v", res, lat)
	}

	// A shaped dial with a bad spec must fail loudly.
	if _, err := Dial(edgeLn.Addr().String(), p, ModeCoIC, "warp 9"); err == nil {
		t.Fatal("bad shape spec accepted")
	}
}

func TestSceneAndAnnotationIDs(t *testing.T) {
	if AnnotationModelID(ClassCar) != "annotation/car" {
		t.Fatal(AnnotationModelID(ClassCar))
	}
	if SceneModelID(231) != "scene/231kb" {
		t.Fatal(SceneModelID(231))
	}
}

func TestCacheSaveLoadAcrossSystems(t *testing.T) {
	cfg := testConfig()
	a, err := NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm system A's cache with one of everything.
	if _, _, err := a.Recognize(0, ClassBuilding, 1, ModeCoIC); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Render(0, AnnotationModelID(ClassBuilding), ModeCoIC); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := a.SaveCache(&snap); err != nil {
		t.Fatal(err)
	}

	// A fresh system ("restarted edge") starts warm after LoadCache.
	b, err := NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.LoadCache(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("restored %d entries, want >= 2", n)
	}
	bd, _, err := b.Recognize(0, ClassBuilding, 2, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Outcome.String() == "miss" {
		t.Fatal("restored cache did not serve a warm recognition")
	}
	rd, err := b.Render(0, AnnotationModelID(ClassBuilding), ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Outcome.String() != "exact" {
		t.Fatalf("restored cache render outcome: %v", rd.Outcome)
	}
}
