package coic_test

// Benchmarks: one per figure of the paper plus micro-benchmarks for the
// substrates the experiments lean on. Latency figures are *simulated*
// time, reported via the sim-ms/op metric (wall-clock b.N timing measures
// only harness overhead); micro-benches measure real compute.
//
//	go test -bench=. -benchmem
//
// The rows the paper prints come from cmd/coic-bench; these benches make
// the same pipelines measurable under the standard Go tooling.

import (
	"context"
	"fmt"
	"testing"
	"time"

	coic "github.com/edge-immersion/coic"
)

func benchParams() coic.Params {
	p := coic.DefaultParams()
	// Trim payloads so -bench runs in seconds; the shape (who wins) is
	// unaffected and the full-size numbers come from cmd/coic-bench.
	p.CameraW, p.CameraH = 256, 256
	p.DNNInput = 32
	p.PanoWidth = 512
	p.MobileGFLOPS *= 4
	return p
}

// BenchmarkFig2aRecognition regenerates a Figure 2a cell per iteration:
// sub-benchmarks cover every (condition, mode) pair; sim-ms/op is the
// simulated user-perceived latency.
func BenchmarkFig2aRecognition(b *testing.B) {
	for _, cond := range coic.Fig2aConditions() {
		for _, tc := range []struct {
			name string
			mode coic.Mode
			warm bool
		}{
			{"origin", coic.ModeOrigin, false},
			{"hit", coic.ModeCoIC, true},
			{"miss", coic.ModeCoIC, false},
		} {
			b.Run(fmt.Sprintf("%s/%s", cond.Name, tc.name), func(b *testing.B) {
				p := benchParams()
				var simTotal time.Duration
				for i := 0; i < b.N; i++ {
					sys, err := coic.New(coic.WithParams(p), coic.WithCondition(cond))
					if err != nil {
						b.Fatal(err)
					}
					if tc.warm {
						if _, err := sys.Do(context.Background(), 0, coic.RecognizeTask(coic.ClassStopSign, 1)); err != nil {
							b.Fatal(err)
						}
						sys.Advance(time.Minute)
					}
					res, err := sys.Do(context.Background(), 0,
						coic.RecognizeTask(coic.ClassStopSign, uint64(100+i)).WithMode(tc.mode))
					if err != nil {
						b.Fatal(err)
					}
					if tc.warm && res.Breakdown.Outcome.String() == "miss" {
						b.Fatal("warm request missed")
					}
					simTotal += res.Breakdown.Total()
				}
				b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/op")
			})
		}
	}
}

// BenchmarkFig2bModelLoad regenerates Figure 2b cells. Origin and hit
// reuse one System across iterations (origin never caches, so every
// iteration is identical; hit stays warm by construction); the miss case
// pays a fresh edge per iteration and uses the smallest ladder size. The
// full six-size sweep is cmd/coic-bench's job.
func BenchmarkFig2bModelLoad(b *testing.B) {
	for _, kb := range []int{231, 1073} {
		for _, tc := range []struct {
			name string
			mode coic.Mode
		}{
			{"origin", coic.ModeOrigin},
			{"hit", coic.ModeCoIC},
		} {
			b.Run(fmt.Sprintf("%dKB/%s", kb, tc.name), func(b *testing.B) {
				p := benchParams()
				sys, err := coic.New(coic.WithParams(p))
				if err != nil {
					b.Fatal(err)
				}
				id := coic.SceneModelID(kb)
				if tc.mode == coic.ModeCoIC {
					if _, err := sys.Do(context.Background(), 0, coic.RenderTask(id)); err != nil {
						b.Fatal(err)
					}
				}
				var simTotal time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.Advance(time.Minute)
					res, err := sys.Do(context.Background(), 0, coic.RenderTask(id).WithMode(tc.mode))
					if err != nil {
						b.Fatal(err)
					}
					simTotal += res.Breakdown.Total()
				}
				b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/op")
			})
		}
	}
	b.Run("231KB/miss", func(b *testing.B) {
		p := benchParams()
		var simTotal time.Duration
		for i := 0; i < b.N; i++ {
			sys, err := coic.New(coic.WithParams(p))
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Do(context.Background(), 0, coic.RenderTask(coic.SceneModelID(231)))
			if err != nil {
				b.Fatal(err)
			}
			if res.Breakdown.Outcome.String() != "miss" {
				b.Fatal("expected a cold miss")
			}
			simTotal += res.Breakdown.Total()
		}
		b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/op")
	})
}

// BenchmarkPanoStreaming measures the VR panorama path (A-pano).
func BenchmarkPanoStreaming(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode coic.Mode
	}{{"origin", coic.ModeOrigin}, {"coic", coic.ModeCoIC}} {
		b.Run(tc.name, func(b *testing.B) {
			p := benchParams()
			sys, err := coic.New(coic.WithParams(p), coic.WithClients(2))
			if err != nil {
				b.Fatal(err)
			}
			// Warm with user 0; measure user 1 (the sharing beneficiary).
			if _, err := sys.Do(context.Background(), 0,
				coic.PanoTask("bench", 0, coic.Viewport{FOV: 1.6}).WithMode(tc.mode)); err != nil {
				b.Fatal(err)
			}
			var simTotal time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Advance(time.Second)
				res, err := sys.Do(context.Background(), 1,
					coic.PanoTask("bench", 0, coic.Viewport{Yaw: 1, FOV: 1.6}).WithMode(tc.mode))
				if err != nil {
					b.Fatal(err)
				}
				simTotal += res.Breakdown.Total()
			}
			b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkStreamServe lives in bench_qos_test.go (package coic): it
// shares the RunQoS ablation's live-stack harness so the benchmark and
// the table cannot drift apart.

// BenchmarkDescriptorExtraction measures the real client-side DNN trunk
// cost (the dominant term of the CoIC hit path).
func BenchmarkDescriptorExtraction(b *testing.B) {
	p := benchParams()
	sys, err := coic.New(coic.WithParams(p))
	if err != nil {
		b.Fatal(err)
	}
	frame, err := sys.CaptureFrame(0, coic.ClassCar, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = frame
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Advance(time.Second)
		if _, err := sys.Do(context.Background(), 0, coic.RecognizeTask(coic.ClassCar, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexLookup compares the edge's descriptor matchers (A-index)
// on real wall-clock time.
func BenchmarkIndexLookup(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, idx := range []string{"linear", "lsh"} {
			b.Run(fmt.Sprintf("%s/%d", idx, n), func(b *testing.B) {
				tab := coic.RunIndexAblation(64, []int{n}, b.N+1, 42)
				_ = tab
			})
		}
	}
}

// BenchmarkLayerCache measures the fine-grained per-layer reuse extension
// (A-layer) on real compute.
func BenchmarkLayerCache(b *testing.B) {
	p := coic.DefaultParams()
	for i := 0; i < b.N; i++ {
		coic.RunFinegrained(p, []int{4}, 16)
	}
}
