package coic

import (
	"context"
	"fmt"
	"sync"

	"github.com/edge-immersion/coic/internal/scene"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file is the collaborative surface: shared-scene sessions. A
// client joins a named, edge-hosted scene and gets back a Scene handle
// holding a local mirror of the room's versioned document — per-key
// last-writer-wins, ordered by edge-assigned sequence numbers. Writes go
// up as publishes; everyone's writes (including the caller's own) come
// down as server-pushed events, the first server-initiated traffic in
// the protocol. Because every update carries its sequence number,
// replays and reorders are harmless: the mirror and the Events channel
// both converge on the newest write per key, no matter the interleaving
// of the join snapshot and concurrent pushes.

// DefaultSceneWindow is the Events channel capacity of a Scene joined
// without WithSceneWindow.
const DefaultSceneWindow = 32

// SceneOption configures a Scene opened by Client.JoinScene.
type SceneOption func(*sceneConfig) error

type sceneConfig struct {
	window int
}

// WithSceneWindow sets the Events channel capacity. When the consumer
// falls behind, pending events coalesce last-writer-wins per key — the
// newest value always gets through, intermediate ones may not.
func WithSceneWindow(n int) SceneOption {
	return func(c *sceneConfig) error {
		if n <= 0 {
			return fmt.Errorf("coic: scene window must be positive, got %d", n)
		}
		c.window = n
		return nil
	}
}

// SceneEntry is one key of a scene document snapshot.
type SceneEntry struct {
	Key   string
	Value []byte
	// Seq is the sequence number of the write that set this key — the
	// entry's slot in the document's version vector.
	Seq uint64
}

// SceneEvent is one scene write delivered to a member: someone (possibly
// the receiver itself) published Key=Value and the edge assigned it Seq.
type SceneEvent struct {
	// Scene is the scene name the write belongs to.
	Scene string
	Key   string
	Value []byte
	// Seq orders this write against every other write in the scene.
	Seq uint64
	// Version is the document version after the write (its highest
	// sequence number).
	Version uint64
	// TraceID is the publishing request's trace, carried through the
	// push so cross-member propagation can be followed in the logs.
	TraceID uint64
}

// Scene is a live membership in an edge-hosted shared scene. The handle
// maintains a local mirror of the scene document, updated from
// server-pushed events on the connection's read loop — current even if
// nobody consumes Events. All methods are safe for concurrent use.
type Scene struct {
	c    *Client
	name string

	// mirror is the local LWW replica; pushes and the join snapshot merge
	// into it by sequence number, so arrival order never matters.
	mirror scene.Doc

	// box coalesces events between the read loop (which must not block)
	// and the pump goroutine feeding the Events channel.
	box    sceneEventBox
	events chan SceneEvent

	closeOnce sync.Once
	closing   chan struct{}
}

// Name reports the scene's name.
func (s *Scene) Name() string { return s.name }

// Events returns the channel scene writes are delivered on, in arrival
// order. Writes the consumer is too slow for coalesce last-writer-wins
// per key; the channel closes when the scene is left or the connection
// dies. The mirror (Snapshot / Version / VersionVector) is updated
// independently of this channel.
func (s *Scene) Events() <-chan SceneEvent { return s.events }

// Snapshot returns the mirror's entries (sorted by key) and version.
func (s *Scene) Snapshot() ([]SceneEntry, uint64) {
	entries, version := s.mirror.Snapshot()
	out := make([]SceneEntry, len(entries))
	for i, e := range entries {
		out[i] = SceneEntry{Key: e.Key, Value: e.Value, Seq: e.Seq}
	}
	return out, version
}

// Version reports the highest sequence number the mirror has seen.
func (s *Scene) Version() uint64 { return s.mirror.Version() }

// VersionVector returns the mirror's per-key sequence map. Two members
// hold the same document exactly when their version vectors are equal.
func (s *Scene) VersionVector() map[string]uint64 { return s.mirror.VersionVector() }

// Publish ships one write to the scene and returns the sequence number
// the edge assigned it. The write lands in the local mirror via its own
// fan-out event — the same path as everyone else's writes — so a
// returned seq may precede the mirror reflecting it by one push latency.
func (s *Scene) Publish(ctx context.Context, key string, value []byte) (uint64, error) {
	body, err := (wire.ScenePublish{Scene: s.name, Key: key, Value: value, TraceID: mintTraceID()}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := s.c.mux.RoundTrip(ctx, wire.Message{Type: wire.MsgScenePublish, Body: body})
	if err != nil {
		return 0, mapRemoteErr(err)
	}
	ack, err := wire.UnmarshalScenePublishAck(reply.Body)
	if err != nil {
		return 0, err
	}
	return ack.Seq, nil
}

// Leave tells the edge to drop this membership (the room is
// garbage-collected when its last member leaves) and closes the Events
// channel. Leaving twice is a no-op. The mirror remains readable.
func (s *Scene) Leave(ctx context.Context) error {
	s.c.forgetScene(s.name)
	var rtErr error
	s.closeOnce.Do(func() {
		body, err := (wire.SceneLeave{Scene: s.name}).Marshal()
		if err == nil {
			_, err = s.c.mux.RoundTrip(ctx, wire.Message{Type: wire.MsgSceneLeave, Body: body})
		}
		rtErr = mapRemoteErr(err)
		close(s.closing)
	})
	return rtErr
}

// closeLocal tears the handle down without a server round trip — the
// connection is gone, so membership dies with it (the edge's disconnect
// sweep handles the room side).
func (s *Scene) closeLocal() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// pump moves coalesced events from the box to the Events channel. It is
// the only sender on (and closer of) s.events.
func (s *Scene) pump() {
	defer close(s.events)
	for {
		select {
		case <-s.box.wake:
			for _, ev := range s.box.drain() {
				select {
				case s.events <- ev:
				case <-s.closing:
					return
				}
			}
		case <-s.closing:
			return
		}
	}
}

// sceneEventBox decouples the connection read loop from the Events
// consumer: enqueue never blocks, and events queued behind a slow
// consumer coalesce last-writer-wins per key — bounded memory, same
// convergence the document itself guarantees.
type sceneEventBox struct {
	wake chan struct{} // capacity 1; level signal to the pump

	mu    sync.Mutex
	items []SceneEvent
	byKey map[string]int
}

func (b *sceneEventBox) enqueue(ev SceneEvent) {
	b.mu.Lock()
	if i, ok := b.byKey[ev.Key]; ok {
		b.items[i] = ev
	} else {
		if b.byKey == nil {
			b.byKey = make(map[string]int)
		}
		b.byKey[ev.Key] = len(b.items)
		b.items = append(b.items, ev)
	}
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

func (b *sceneEventBox) drain() []SceneEvent {
	b.mu.Lock()
	items := b.items
	b.items = nil
	b.byKey = nil
	b.mu.Unlock()
	return items
}

// JoinScene joins (creating on first join) the named scene on the
// connection's tenant and returns its handle, seeded with the room's
// current document. Scene names are scoped per tenant — two tenants'
// "lobby" scenes never meet. Joining requires the connection's
// completion-order reply mode (every Client negotiates it; only legacy
// v1 clients cannot), and counts against the tenant's scene-member
// quota when one is configured (TenantConfig.SceneMembers), failing
// with ErrQuotaExceeded beyond it. A client may join many scenes; one
// JoinScene per scene per connection (rejoining an open handle's scene
// is an error until it is left).
func (c *Client) JoinScene(ctx context.Context, name string, opts ...SceneOption) (*Scene, error) {
	cfg := sceneConfig{window: DefaultSceneWindow}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Scene{
		c:       c,
		name:    name,
		events:  make(chan SceneEvent, cfg.window),
		closing: make(chan struct{}),
	}
	s.box.wake = make(chan struct{}, 1)

	// Register the handle before the join frame ships: the join reply
	// (snapshot) and the first pushed events race on the wire, and the
	// LWW mirror makes either order correct — but only if the events
	// have somewhere to land.
	c.sceneMu.Lock()
	if c.scenes == nil {
		c.scenes = make(map[string]*Scene)
		c.mux.SetPushHandler(c.handleScenePush, c.handleSceneConnClose)
	}
	if _, dup := c.scenes[name]; dup {
		c.sceneMu.Unlock()
		return nil, fmt.Errorf("coic: scene %q already joined", name)
	}
	c.scenes[name] = s
	c.sceneMu.Unlock()
	go s.pump()

	fail := func(err error) (*Scene, error) {
		c.forgetScene(name)
		s.closeLocal()
		return nil, err
	}
	body, err := (wire.SceneJoin{Scene: name, TraceID: mintTraceID()}).Marshal()
	if err != nil {
		return fail(err)
	}
	reply, err := c.mux.RoundTrip(ctx, wire.Message{Type: wire.MsgSceneJoin, Body: body})
	if err != nil {
		return fail(mapRemoteErr(err))
	}
	snap, err := wire.UnmarshalSceneSnapshot(reply.Body)
	if err != nil {
		return fail(fmt.Errorf("coic: bad scene snapshot: %w", err))
	}
	for _, e := range snap.Entries {
		s.mirror.Apply(e.Key, e.Value, e.Seq)
	}
	return s, nil
}

// handleScenePush runs on the connection read loop for every pushed
// MsgSceneEvent: merge into the scene's mirror (cheap, lock-guarded map
// write) and hand the event to the pump. Must not block.
func (c *Client) handleScenePush(msg wire.Message) {
	ev, err := wire.UnmarshalSceneEvent(msg.Body)
	if err != nil {
		return // a malformed push poisons nothing; drop it
	}
	c.sceneMu.Lock()
	s := c.scenes[ev.Scene]
	c.sceneMu.Unlock()
	if s == nil {
		return // pushed after a local leave raced the server's; stale
	}
	s.mirror.Apply(ev.Key, ev.Value, ev.Seq)
	s.box.enqueue(SceneEvent{
		Scene: ev.Scene, Key: ev.Key, Value: ev.Value,
		Seq: ev.Seq, Version: ev.Version, TraceID: ev.TraceID,
	})
}

// handleSceneConnClose tears down every open scene when the connection
// dies: Events channels close, mirrors stay readable.
func (c *Client) handleSceneConnClose() {
	c.sceneMu.Lock()
	scenes := make([]*Scene, 0, len(c.scenes))
	for _, s := range c.scenes {
		scenes = append(scenes, s)
	}
	c.scenes = nil
	c.sceneMu.Unlock()
	for _, s := range scenes {
		s.closeLocal()
	}
}

func (c *Client) forgetScene(name string) {
	c.sceneMu.Lock()
	delete(c.scenes, name)
	c.sceneMu.Unlock()
}
