package coic

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the v2 task API: one context-first entry point for every
// IC workload. A Request is a tagged union over the three task kinds with
// per-request Mode and Deadline; System.Do executes one, System.DoBatch a
// sequence. The v1 per-task methods (System.Recognize / Render / Pano)
// remain as deprecated wrappers.

// RecognizeSpec is the recognition variant of a Request: observe an
// object of Class from a viewpoint derived from ViewSeed and resolve its
// label through the CoIC protocol.
type RecognizeSpec struct {
	Class    Class
	ViewSeed uint64
}

// RenderSpec is the 3D-model load-and-draw variant of a Request.
type RenderSpec struct {
	ModelID string
}

// PanoSpec is the VR panorama fetch-and-crop variant of a Request.
type PanoSpec struct {
	VideoID  string
	Frame    int
	Viewport Viewport
}

// Request is one IC task: a tagged union — exactly one of Recognize,
// Render and Pano set — plus per-request execution knobs. Construct
// requests with RecognizeTask / RenderTask / PanoTask (which default Mode
// to ModeCoIC) or as struct literals (where the zero Mode is ModeOrigin,
// matching the wire encoding — set it explicitly).
type Request struct {
	Recognize *RecognizeSpec
	Render    *RenderSpec
	Pano      *PanoSpec

	// Mode selects the CoIC protocol or the paper's Origin baseline for
	// this request only. It applies to System.Do (virtual time); on the
	// TCP path the mode is a connection-level property announced at dial
	// time (WithDialMode), and Stream.Submit ignores this field.
	Mode Mode
	// Deadline, when positive, bounds the request's acceptable latency.
	// In virtual time (System.Do): if the computed end-to-end latency
	// exceeds it, Do returns ErrDeadlineExceeded alongside the
	// (complete) Result — the answer arrived too late for a
	// motion-to-photon budget, which for an immersive client is a miss
	// even though the bytes exist; virtual time still advances. On a
	// Stream (wall clock): the budget starts at Submit, is encoded on
	// the wire as an absolute deadline, and the edge sheds the request
	// unexecuted if it expires while queued.
	Deadline time.Duration
	// QoS is the request's service class. On the TCP path the edge and
	// cloud schedulers dispatch strictly by class (interactive before
	// best-effort), earliest-deadline-first within a class. The virtual
	// System has no queue to schedule — there QoS is carried for
	// accounting only (SystemStats.QoS).
	QoS QoS
	// TraceID, when non-zero, identifies this request in every tier's
	// structured logs (client, edge, cloud) for cross-tier correlation of
	// slow frames. Stream.Submit mints a random ID when it is zero; set it
	// explicitly to correlate with an external system. Virtual-time
	// System.Do ignores it (there is nothing to correlate across).
	TraceID uint64
}

// RecognizeTask builds a CoIC-mode recognition request.
func RecognizeTask(class Class, viewSeed uint64) Request {
	return Request{Recognize: &RecognizeSpec{Class: class, ViewSeed: viewSeed}, Mode: ModeCoIC}
}

// RenderTask builds a CoIC-mode 3D-model request.
func RenderTask(modelID string) Request {
	return Request{Render: &RenderSpec{ModelID: modelID}, Mode: ModeCoIC}
}

// PanoTask builds a CoIC-mode VR panorama request.
func PanoTask(videoID string, frame int, vp Viewport) Request {
	return Request{Pano: &PanoSpec{VideoID: videoID, Frame: frame, Viewport: vp}, Mode: ModeCoIC}
}

// WithMode returns a copy of the request running in the given mode.
func (r Request) WithMode(m Mode) Request { r.Mode = m; return r }

// WithDeadline returns a copy of the request with a latency budget
// (virtual for System.Do, wall clock from Submit for streams).
func (r Request) WithDeadline(d time.Duration) Request { r.Deadline = d; return r }

// WithQoS returns a copy of the request in the given service class.
func (r Request) WithQoS(q QoS) Request { r.QoS = q; return r }

// WithTraceID returns a copy of the request carrying the given trace ID
// on the wire (see Request.TraceID).
func (r Request) WithTraceID(id uint64) Request { r.TraceID = id; return r }

// Validate reports whether the request names exactly one task.
func (r Request) Validate() error {
	n := 0
	if r.Recognize != nil {
		n++
	}
	if r.Render != nil {
		n++
	}
	if r.Pano != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("coic: request must name exactly one task, has %d", n)
	}
	return nil
}

// String names the request's task kind for logs.
func (r Request) String() string {
	switch {
	case r.Recognize != nil:
		return fmt.Sprintf("recognize(%s)", r.Recognize.Class)
	case r.Render != nil:
		return fmt.Sprintf("render(%s)", r.Render.ModelID)
	case r.Pano != nil:
		return fmt.Sprintf("pano(%s#%d)", r.Pano.VideoID, r.Pano.Frame)
	default:
		return "request(empty)"
	}
}

// ErrDeadlineExceeded reports a result that arrived after its Request's
// virtual latency budget. The accompanying Result is still complete.
var ErrDeadlineExceeded = errors.New("coic: request exceeded its deadline")

// Result is the outcome of one Request.
type Result struct {
	// Breakdown decomposes the request's virtual latency.
	Breakdown Breakdown
	// Recognition is set for recognition requests only.
	Recognition *RecognitionResult
}

// Do executes one request for the given client, advancing the system's
// virtual clock to the request's completion. ctx carries wall-clock
// cancellation: an already-expired context returns promptly — before any
// cloud work — and a context that dies mid-request abandons it at the
// next stage boundary. req.Deadline additionally bounds the *virtual*
// latency; see Request.Deadline.
func (s *System) Do(ctx context.Context, client int, req Request) (Result, error) {
	if err := req.Validate(); err != nil {
		return Result{}, err
	}
	sess, err := s.session(client)
	if err != nil {
		return Result{}, err
	}
	var res Result
	switch {
	case req.Recognize != nil:
		b, rr, err := sess.Recognize(ctx, s.now, req.Recognize.Class, req.Recognize.ViewSeed, req.Mode)
		if err != nil {
			return Result{Breakdown: b}, err
		}
		res = Result{Breakdown: b, Recognition: &RecognitionResult{
			Label:             rr.Label,
			Confidence:        float64(rr.Confidence),
			AnnotationModelID: rr.AnnotationModelID,
		}}
	case req.Render != nil:
		b, err := sess.Render(ctx, s.now, req.Render.ModelID, req.Mode)
		if err != nil {
			return Result{Breakdown: b}, err
		}
		res = Result{Breakdown: b}
	case req.Pano != nil:
		b, err := sess.Pano(ctx, s.now, req.Pano.VideoID, req.Pano.Frame, req.Pano.Viewport, req.Mode)
		if err != nil {
			return Result{Breakdown: b}, err
		}
		res = Result{Breakdown: b}
	}
	s.now = res.Breakdown.End
	if req.QoS == QoSInteractive {
		s.qos.Interactive++
	} else {
		s.qos.BestEffort++
	}
	if req.Deadline > 0 && res.Breakdown.Total() > req.Deadline {
		s.qos.DeadlineMisses++
		return res, fmt.Errorf("%w: %v > %v", ErrDeadlineExceeded, res.Breakdown.Total(), req.Deadline)
	}
	return res, nil
}

// DoBatch executes requests in order for the given client, stopping at
// the first failure (including ctx expiry and per-request deadline
// misses). It returns one Result per completed request; on error the
// slice holds the results up to and including the failing request's
// partial result.
func (s *System) DoBatch(ctx context.Context, client int, reqs []Request) ([]Result, error) {
	results := make([]Result, 0, len(reqs))
	for i, req := range reqs {
		res, err := s.Do(ctx, client, req)
		if err != nil {
			results = append(results, res)
			return results, fmt.Errorf("coic: batch request %d (%s): %w", i, req, err)
		}
		results = append(results, res)
	}
	return results, nil
}
