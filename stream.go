package coic

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// mintTraceID draws a random non-zero trace identifier (zero means "no
// trace" on the wire).
func mintTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// This file is the streaming request surface — the shape of CoIC's real
// workloads. An AR client recognises objects every frame and a VR client
// fetches viewport crops at display rate; a lock-step request/reply API
// leaves the pipelined edge (and the radio) idle between round trips. A
// Stream keeps a bounded window of requests in flight on one connection:
// Submit returns as soon as the frame is on the wire (backpressure only
// when the window is full), completions arrive out of band — via the
// merged Results channel or per-ticket Await — in completion order, and
// every request carries a QoS class and wall-clock deadline that the
// edge's scheduler enforces (strict class priority, EDF within a class,
// expired work shed before it wastes a worker).

// QoS is a request's service class, carried on the wire to the edge and
// cloud schedulers. The public API speaks the wire package's type; the
// class of a zero-valued Request is QoSBestEffort.
type QoS = wire.QoS

// Service classes.
const (
	// QoSBestEffort is background traffic: prefetches, cache warming,
	// analytics. It runs whenever no interactive work is queued.
	QoSBestEffort = wire.QoSBestEffort
	// QoSInteractive is motion-to-photon traffic: every queued
	// interactive request is dispatched before any best-effort one.
	QoSInteractive = wire.QoSInteractive
)

// Result sources, echoed in Completion.Source: which tier supplied the
// result bytes.
const (
	SourceCloud = wire.SourceCloud
	SourceEdge  = wire.SourceEdge
)

// DefaultStreamWindow is the in-flight window of a Stream built without
// WithWindow.
const DefaultStreamWindow = 8

// StreamOption configures a Stream opened by Client.Stream.
type StreamOption func(*streamConfig) error

type streamConfig struct {
	window int
}

// WithWindow bounds how many requests the stream keeps in flight;
// Submit blocks (backpressure) once the window is full and unblocks as
// completions are consumed.
func WithWindow(n int) StreamOption {
	return func(c *streamConfig) error {
		if n <= 0 {
			return fmt.Errorf("coic: stream window must be positive, got %d", n)
		}
		c.window = n
		return nil
	}
}

// Completion is the out-of-band outcome of one submitted request.
type Completion struct {
	// ID is the ticket's request identifier on the connection.
	ID uint64
	// TraceID is the request's cross-tier trace identifier: the one the
	// caller set on the Request, or the one Submit minted for it. Grep the
	// edge and cloud logs for its %016x rendering to follow the request.
	TraceID uint64
	// Request echoes what was submitted.
	Request Request
	// Recognition is set for successful recognition requests.
	Recognition *RecognitionResult
	// Source reports which tier supplied the result bytes (SourceEdge
	// for cache hits and coalesced waiters, SourceCloud for the request
	// that paid the upstream round trip); zero on error.
	Source uint8
	// Latency is wall-clock time from Submit to completion.
	Latency time.Duration
	// Err is nil on success; ErrDeadlineExceeded when the request was
	// shed at the edge or its result landed past the budget (Request
	// data is still populated in the latter case); ErrOverloaded when
	// admission control rejected it; context.Canceled when the ticket
	// was cancelled.
	Err error
}

// Ticket tracks one submitted request. Its completion is delivered both
// here (Await) and on the stream's Results channel, if enabled.
type Ticket struct {
	id        uint64
	req       Request
	s         *Stream
	submitted time.Time
	deadline  time.Time
	done      chan struct{}
	comp      Completion
}

// ID is the request identifier on the connection (useful in logs).
func (t *Ticket) ID() uint64 { return t.id }

// Await blocks until the ticket completes, returning its Completion and
// the completion's Err. ctx bounds only the wait: an expired ctx leaves
// the request in flight (use Cancel to abort it).
func (t *Ticket) Await(ctx context.Context) (Completion, error) {
	select {
	case <-t.done:
		return t.comp, t.comp.Err
	case <-ctx.Done():
		return Completion{}, ctx.Err()
	}
}

// Cancel asks the edge to abort this request; other tickets on the
// stream are untouched. The ticket still completes — with
// context.Canceled if the cancel landed in time, or its result if it
// lost the race.
func (t *Ticket) Cancel() {
	t.s.c.mux.SendCancel(t.id)
}

// Stream is a window of in-flight requests on a Client's connection.
// Open one per logical flow (one per camera, one per viewport); streams
// on the same Client share the connection and therefore the edge's
// per-connection scheduler, which is what lets an interactive stream
// pre-empt a best-effort one.
type Stream struct {
	c      *Client
	ctx    context.Context
	window chan struct{}

	results   chan Completion
	resultsOn atomic.Bool
	closing   chan struct{}

	mu      sync.Mutex
	closed  bool
	pending map[uint64]*Ticket
	wg      sync.WaitGroup
}

// Stream opens a streaming window on the client's connection. ctx bounds
// the stream's lifetime: when it dies, every in-flight ticket is
// cancelled (the edge stops working on them) and further Submits fail.
func (c *Client) Stream(ctx context.Context, opts ...StreamOption) (*Stream, error) {
	cfg := streamConfig{window: DefaultStreamWindow}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Stream{
		c:       c,
		ctx:     ctx,
		window:  make(chan struct{}, cfg.window),
		results: make(chan Completion, cfg.window),
		closing: make(chan struct{}),
		pending: map[uint64]*Ticket{},
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				// Abort everything in flight; completions flow normally
				// (context.Canceled) as the edge answers the cancels.
				s.mu.Lock()
				tickets := make([]*Ticket, 0, len(s.pending))
				for _, t := range s.pending {
					tickets = append(tickets, t)
				}
				s.mu.Unlock()
				for _, t := range tickets {
					t.Cancel()
				}
			case <-s.closing:
			}
		}()
	}
	return s, nil
}

// Submit ships one request without waiting for its reply, as long as
// fewer than the window are in flight; beyond that it blocks until a
// completion frees a slot (or ctx / the stream's ctx dies). The
// request's Deadline (if set) becomes an absolute wall-clock deadline
// from now, encoded on the wire: the edge sheds the request unexecuted
// if it expires in the queue, and a result landing after it completes
// with ErrDeadlineExceeded. On-device work (frame capture, descriptor
// extraction) runs synchronously on the caller, as it would on the
// phone's camera thread.
//
// The execution mode (CoIC vs Origin) is a connection-level property on
// the TCP path, announced at dial time (WithDialMode): req.Mode is
// ignored here. Dial a second Client to compare against the Origin
// baseline.
func (s *Stream) Submit(ctx context.Context, req Request) (*Ticket, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("coic: stream closed")
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}

	submitted := time.Now()
	var deadline time.Time
	if req.Deadline > 0 {
		deadline = submitted.Add(req.Deadline)
	}
	if req.TraceID == 0 {
		// Mint the cross-tier correlation ID here, where the request's
		// life begins; every tier it crosses logs the same value.
		req.TraceID = mintTraceID()
	}
	var msg wire.Message
	var err error
	switch {
	case req.Recognize != nil:
		msg, err = s.c.mux.BuildRecognize(req.Recognize.Class, req.Recognize.ViewSeed, req.QoS, deadline, req.TraceID)
	case req.Render != nil:
		msg, err = s.c.mux.BuildRender(req.Render.ModelID, req.QoS, deadline, req.TraceID)
	case req.Pano != nil:
		msg, err = s.c.mux.BuildPano(req.Pano.VideoID, req.Pano.Frame, req.QoS, deadline, req.TraceID)
	}
	if err != nil {
		return nil, err
	}

	select {
	case s.window <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.ctx.Done():
		return nil, s.ctx.Err()
	}

	id, ch, err := s.c.mux.Start(msg)
	if err != nil {
		<-s.window
		return nil, err
	}
	t := &Ticket{id: id, req: req, s: s, submitted: submitted, deadline: deadline, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		// Lost the race with Close: the frame is on the wire but nobody
		// will await it. Withdraw interest and abort it server-side.
		s.mu.Unlock()
		s.c.mux.Forget(id)
		s.c.mux.SendCancel(id)
		<-s.window
		return nil, fmt.Errorf("coic: stream closed")
	}
	s.pending[id] = t
	s.wg.Add(1) // under mu: Close marks closed before it calls wg.Wait
	s.mu.Unlock()
	go s.await(t, ch)
	return t, nil
}

// await completes one ticket: decode the reply, run the client-side half
// of the task, stamp latency and deliver.
func (s *Stream) await(t *Ticket, ch <-chan wire.Message) {
	defer s.wg.Done()
	comp := Completion{ID: t.id, TraceID: t.req.TraceID, Request: t.req}
	reply, ok := <-ch
	if !ok {
		comp.Err = fmt.Errorf("coic: connection closed with request in flight")
	} else {
		var err error
		switch {
		case t.req.Recognize != nil:
			var res wire.RecognitionResult
			var src uint8
			res, src, err = s.c.mux.FinishRecognize(reply)
			if err == nil {
				comp.Source = src
				comp.Recognition = &RecognitionResult{
					Label:             res.Label,
					Confidence:        float64(res.Confidence),
					AnnotationModelID: res.AnnotationModelID,
				}
			}
		case t.req.Render != nil:
			comp.Source, err = s.c.mux.FinishRender(reply)
		case t.req.Pano != nil:
			comp.Source, err = s.c.mux.FinishPano(reply, t.req.Pano.Viewport)
		}
		comp.Err = mapRemoteErr(err)
	}
	comp.Latency = time.Since(t.submitted)
	if comp.Err == nil && !t.deadline.IsZero() && time.Now().After(t.deadline) {
		// The work completed but the budget is blown: for a
		// motion-to-photon client this frame is a miss even though the
		// bytes exist. The result fields stay populated.
		comp.Err = fmt.Errorf("%w: completed %v late", ErrDeadlineExceeded, comp.Latency-t.req.Deadline)
	}
	s.deliver(t, comp)
}

func (s *Stream) deliver(t *Ticket, comp Completion) {
	t.comp = comp
	close(t.done)
	s.mu.Lock()
	delete(s.pending, t.id)
	s.mu.Unlock()
	if s.resultsOn.Load() {
		select {
		case s.results <- comp:
		case <-s.closing:
			// Closing raced this delivery. A consumer draining Results
			// through Close should still see it, so park it in the
			// buffer if there is room; only a full buffer (nobody
			// draining) drops it.
			select {
			case s.results <- comp:
			default:
			}
		}
	}
	<-s.window
}

// Results returns the merged completion channel: every completion after
// this call is delivered there, in completion order (out of order with
// respect to submission — that is the point). Call it before submitting;
// completions that finished before the first call are not replayed (use
// Await for those). The channel closes when the stream is closed. Note
// that a completion is visible both here and on its ticket's Await.
func (s *Stream) Results() <-chan Completion {
	s.resultsOn.Store(true)
	return s.results
}

// InFlight reports how many submitted requests have not completed.
func (s *Stream) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Close stops admission, waits for in-flight tickets to complete (their
// Await results remain readable) and closes the Results channel.
// Completions that nobody consumed from Results are dropped at close;
// drain Results (or Await every ticket) first.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.closing)
	s.wg.Wait()
	close(s.results)
	return nil
}
