package coic

import (
	"errors"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/metrics"
)

// BenchmarkStreamServe measures what deadline-aware class scheduling
// buys an interactive stream on a live TCP stack, on exactly the
// RunQoS ablation's harness (qosHarness — shared so the benchmark and
// the table cannot drift apart): a background stream keeps a standing
// window of always-miss pano fetches queued at a one-worker edge behind
// a ~40ms-RTT link, while the foreground issues one request per
// iteration. In the fifo case neither stream carries QoS metadata (the
// pre-QoS edge) and the foreground absorbs the backlog; in the qos case
// the foreground is QoSInteractive with a deadline and jumps the queue.
// Reported p50-ms/p99-ms are foreground completion latencies.
func BenchmarkStreamServe(b *testing.B) {
	for _, bc := range []struct {
		name string
		qos  bool
	}{{"fifo", false}, {"qos-interactive", true}} {
		b.Run(bc.name, func(b *testing.B) {
			h, err := newQoSHarness(testConfig().Params)
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			stopBG, err := h.StartBackground(bc.qos)
			if err != nil {
				b.Fatal(err)
			}
			defer stopBG()
			fg, err := h.Client.Stream(h.ctx, WithWindow(1))
			if err != nil {
				b.Fatal(err)
			}

			hist := &metrics.Histogram{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := PanoTask("qos-fg", i, Viewport{FOV: 1.6})
				if bc.qos {
					req = req.WithQoS(QoSInteractive).WithDeadline(250 * time.Millisecond)
				}
				ticket, err := fg.Submit(h.ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				comp, err := ticket.Await(h.ctx)
				if err != nil && !errors.Is(err, ErrDeadlineExceeded) {
					b.Fatal(err)
				}
				hist.Record(comp.Latency)
			}
			b.StopTimer()
			b.ReportMetric(float64(hist.Median())/float64(time.Millisecond), "p50-ms")
			b.ReportMetric(float64(hist.P99())/float64(time.Millisecond), "p99-ms")
		})
	}
}
