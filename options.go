package coic

// This file is the v2 constructor: functional options over the same
// validated configuration the deprecated Config struct carries, so both
// construction styles share one code path (New applies options into a
// Config and defers to the v1 validation logic).

// Option configures a System built by New.
type Option func(*Config) error

// WithParams overrides the calibrated reproduction parameters.
func WithParams(p Params) Option {
	return func(c *Config) error { c.Params = p; return nil }
}

// WithCondition selects the (B_M→E, B_E→C) network condition.
func WithCondition(cond Condition) Option {
	return func(c *Config) error { c.Condition = cond; return nil }
}

// WithCachePolicy selects eviction: "lru" (default), "lfu", "fifo" or
// "gdsf". Unknown names surface as an error from New.
func WithCachePolicy(policy string) Option {
	return func(c *Config) error { c.CachePolicy = policy; return nil }
}

// WithIndex selects the descriptor matcher: "linear" (default) or "lsh".
func WithIndex(index string) Option {
	return func(c *Config) error { c.Index = index; return nil }
}

// WithClients attaches n mobile clients (default 1).
func WithClients(n int) Option {
	return func(c *Config) error { c.Clients = n; return nil }
}

// WithPrivacyK enables the k-anonymity sharing gate: cached results are
// only shared with strangers once k distinct users have requested them.
func WithPrivacyK(k int) Option {
	return func(c *Config) error { c.PrivacyK = k; return nil }
}

// New assembles a System in virtual time: clients, one edge, one cloud,
// and the network between them. Unconfigured aspects default sensibly
// (calibrated Params, the 200/20 Mbps mid-sweep condition, LRU eviction,
// a linear index, one client).
func New(opts ...Option) (*System, error) {
	var cfg Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return NewFromConfig(cfg)
}
