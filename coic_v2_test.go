package coic

// Tests for the v2 API surface: the unified Request/Do entry point,
// functional options, context semantics, deadlines, SystemStats, and the
// option-built TCP servers with graceful shutdown.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func testSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	sys, err := New(append([]Option{WithParams(testConfig().Params)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDoUnifiedTasks(t *testing.T) {
	sys := testSystem(t, WithClients(2))
	ctx := context.Background()

	res, err := sys.Do(ctx, 0, RecognizeTask(ClassStopSign, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recognition == nil || res.Recognition.Label == "" {
		t.Fatalf("recognition result missing: %+v", res)
	}
	sys.Advance(time.Second)

	res2, err := sys.Do(ctx, 1, RecognizeTask(ClassStopSign, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Breakdown.Outcome.String() == "miss" {
		t.Fatal("second user did not benefit from the shared cache")
	}

	if _, err := sys.Do(ctx, 0, RenderTask(AnnotationModelID(ClassCar))); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Do(ctx, 0, PanoTask("v2-video", 0, Viewport{FOV: 1.5})); err != nil {
		t.Fatal(err)
	}
	if res.Recognition.AnnotationModelID == "" {
		t.Fatal("annotation model id empty")
	}
}

func TestDoValidatesRequests(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()
	if _, err := sys.Do(ctx, 0, Request{}); err == nil {
		t.Fatal("empty request accepted")
	}
	two := RecognizeTask(ClassCar, 1)
	two.Render = &RenderSpec{ModelID: "x"}
	if _, err := sys.Do(ctx, 0, two); err == nil {
		t.Fatal("two-task request accepted")
	}
	if _, err := sys.Do(ctx, 9, RecognizeTask(ClassCar, 1)); err == nil {
		t.Fatal("out-of-range client accepted")
	}
}

// TestDoExpiredContextNoCloudRoundTrip is the satellite acceptance test:
// an already-dead context must return promptly without any cloud work —
// no compute time accrues cloud-side and the virtual clock stays put.
func TestDoExpiredContextNoCloudRoundTrip(t *testing.T) {
	sys := testSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	before := sys.Now()
	start := time.Now()
	_, err := sys.Do(ctx, 0, RecognizeTask(ClassTree, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired-context Do took %v — it did real work", elapsed)
	}
	if !sys.Now().Equal(before) {
		t.Fatal("expired-context Do advanced the virtual clock")
	}
	if st := sys.Stats(); st.Queries.Queries != 0 {
		t.Fatalf("expired-context Do touched the cache: %+v", st.Queries)
	}
	// The system is unharmed: the same request succeeds with a live ctx.
	if _, err := sys.Do(context.Background(), 0, RecognizeTask(ClassTree, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestDoDeadline(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()

	// A cold recognition takes hundreds of virtual milliseconds; one
	// nanosecond of budget must fail it — with the full result attached
	// and the clock advanced (the work happened, just too late).
	before := sys.Now()
	res, err := sys.Do(ctx, 0, RecognizeTask(ClassDog, 1).WithDeadline(time.Nanosecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if res.Recognition == nil || res.Recognition.Label == "" {
		t.Fatal("deadline miss must still carry the completed result")
	}
	if !sys.Now().After(before) {
		t.Fatal("deadline miss must advance the virtual clock")
	}
	// A generous budget passes.
	sys.Advance(time.Second)
	if _, err := sys.Do(ctx, 0, RecognizeTask(ClassDog, 2).WithDeadline(time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestDoBatchStopsAtFirstFailure(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()
	results, err := sys.DoBatch(ctx, 0, []Request{
		RecognizeTask(ClassCar, 1),
		RenderTask("no-such-model"),
		RecognizeTask(ClassCar, 2), // never reached
	})
	if err == nil {
		t.Fatal("batch with a failing request succeeded")
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (success + failing partial)", len(results))
	}
	if results[0].Recognition == nil {
		t.Fatal("first result lost")
	}
}

func TestNewOptionValidation(t *testing.T) {
	if _, err := New(WithCachePolicy("belady")); err == nil {
		t.Fatal("unknown policy accepted through options")
	}
	if _, err := New(WithIndex("faiss")); err == nil {
		t.Fatal("unknown index accepted through options")
	}
	sys, err := New(
		WithParams(testConfig().Params),
		WithCachePolicy("gdsf"),
		WithIndex("lsh"),
		WithClients(3),
		WithPrivacyK(2),
		WithCondition(Condition{Name: "90/30", MobileEdge: 90, EdgeCloud: 30}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Condition.Name != "90/30" {
		t.Fatalf("condition = %+v", sys.Condition)
	}
	if _, _, err := sys.Recognize(2, ClassCar, 1, ModeCoIC); err != nil {
		t.Fatalf("client 2 rejected: %v", err)
	}
}

// TestSystemStatsCoversSimilarHits locks in the satellite fix: the
// similarity-hit counter the deprecated CacheStats discarded is visible
// in SystemStats, alongside coherent store counters.
func TestSystemStatsCoversSimilarHits(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()
	if _, err := sys.Do(ctx, 0, RecognizeTask(ClassBuilding, 1)); err != nil {
		t.Fatal(err)
	}
	sys.Advance(time.Second)
	// A different viewpoint of the same object: a *similar* hit.
	res, err := sys.Do(ctx, 0, RecognizeTask(ClassBuilding, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Outcome.String() != "similar" {
		t.Skipf("second view resolved as %s, not similar; counter not exercised", res.Breakdown.Outcome)
	}
	st := sys.Stats()
	if st.Queries.SimilarHits == 0 {
		t.Fatalf("similar hits invisible in SystemStats: %+v", st.Queries)
	}
	if st.Queries.HitRatio() <= 0 {
		t.Fatalf("hit ratio = %v", st.Queries.HitRatio())
	}
	if st.Store.Entries == 0 || st.Store.BytesUsed == 0 || st.Store.Capacity == 0 {
		t.Fatalf("store stats incoherent: %+v", st.Store)
	}
	if st.Store.Insertions == 0 {
		t.Fatalf("store insertions missing: %+v", st.Store)
	}
}

// TestShapeSpecParseErrors covers the bad-tc-spec paths explicitly for
// every entry point that accepts one.
func TestShapeSpecParseErrors(t *testing.T) {
	p := testConfig().Params
	const bad = ShapeSpec("warp 9")

	if _, err := Dial("127.0.0.1:1", p, ModeCoIC, bad); err == nil {
		t.Fatal("Dial accepted a bad shape spec")
	}
	if _, err := DialContext(context.Background(), "127.0.0.1:1", p, ModeCoIC, bad); err == nil {
		t.Fatal("DialContext accepted a bad shape spec")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := ServeEdge(ln, p, "127.0.0.1:1", bad); err == nil {
		t.Fatal("ServeEdge accepted a bad shape spec")
	}
	if err := NewEdgeServer(WithListener(ln), WithCloudShape(bad)).Serve(context.Background()); err == nil {
		t.Fatal("NewEdgeServer accepted a bad shape spec")
	}
	// The error message should point at the spec, not a generic failure.
	err = NewEdgeServer(WithListener(ln), WithCloudShape(bad)).Serve(context.Background())
	if err == nil || !strings.Contains(err.Error(), "warp") && !strings.Contains(err.Error(), "tc") {
		t.Fatalf("unhelpful shape error: %v", err)
	}
}

func TestCloudServerRejectsEdgeOnlyOptions(t *testing.T) {
	err := NewCloudServer(WithCloud("x"), WithFetchTimeout(time.Second)).Serve(context.Background())
	if err == nil {
		t.Fatal("cloud server accepted edge-only options")
	}
	if !strings.Contains(err.Error(), "edge-only") {
		t.Fatalf("unhelpful option error: %v", err)
	}
}

// TestServersV2EndToEnd runs the option-built cloud and edge, drives a
// client through DialContext with per-request contexts, and shuts both
// tiers down gracefully.
func TestServersV2EndToEnd(t *testing.T) {
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cloudDone := make(chan error, 1)
	go func() {
		cloudDone <- NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)
	}()

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithWorkers(4),
		WithQueueDepth(8),
		WithFetchTimeout(10*time.Second),
	)
	edgeDone := make(chan error, 1)
	go func() { edgeDone <- edge.Serve(ctx) }()

	cli, err := DialContext(ctx, edgeLn.Addr().String(), p, ModeCoIC, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res, lat, err := cli.RecognizeContext(ctx, ClassAvatar, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label == "" || lat <= 0 {
		t.Fatalf("result %+v lat %v", res, lat)
	}
	if _, err := cli.RenderContext(ctx, AnnotationModelID(ClassAvatar)); err != nil {
		t.Fatal(err)
	}
	if st := edge.Stats(); st.CloudFetches == 0 {
		t.Fatalf("edge server stats = %+v, want cloud fetches recorded", st)
	}
	if edge.Addr() == nil {
		t.Fatal("edge Addr() nil while serving")
	}

	cancel() // graceful shutdown of both tiers
	for name, done := range map[string]chan error{"edge": edgeDone, "cloud": cloudDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s Serve = %v, want nil", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not shut down", name)
		}
	}
}
