# Local gates mirroring .github/workflows/ci.yml — contributors run the
# exact same checks CI enforces.

GO ?= go
COVER_BASELINE_FILE := .github/coverage-baseline.txt
API_BASELINE_FILE := .github/api-baseline-ref
# The apidiff version CI pins; bump deliberately alongside Go bumps.
APIDIFF_VERSION := v0.0.0-20240909161429-701f63a606c0

.PHONY: all build lint test bench cover api smoke smoke-gossip fuzz ci

# How long each fuzz target mutates (the CI fuzz-smoke duration).
FUZZ_TIME ?= 30s

all: build

build:
	$(GO) build ./...

# lint = gofmt + go vet + explicit example builds + staticcheck (skipped
# with a notice if the tool is not installed; CI always runs it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./examples/...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1, the version CI pins); skipping"; \
	fi

# test = the CI test job: race detector + coverage profile + baseline gate.
test:
	$(GO) test -race -timeout 20m -coverprofile=coverage.out ./...
	@$(MAKE) --no-print-directory cover

# cover checks the recorded coverage baseline against coverage.out.
cover:
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	baseline=$$(cat $(COVER_BASELINE_FILE)); \
	echo "total coverage: $$total% (baseline $$baseline%)"; \
	awk -v t="$$total" -v b="$$baseline" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% fell below the recorded baseline $$baseline%"; exit 1; }

# bench = the CI bench-smoke job: one iteration of every benchmark so
# they cannot bit-rot, plus the machine-readable bench tables CI uploads
# as artifacts.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -timeout 20m ./...
	$(GO) run ./cmd/coic-bench -experiment qos,noisy,batch,scene,churn -json > bench-qos.json
	$(GO) run ./cmd/coic-bench -experiment burst -json > bench-burst.json
	$(GO) run ./cmd/coic-benchdiff BENCH_stream.json bench-qos.json

# fuzz = the CI fuzz-smoke job: a short randomized run of every fuzz
# target (their committed seed corpora already replay under `make test`).
# go test takes one -fuzz pattern per invocation, hence the three runs.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadMessage -fuzztime=$(FUZZ_TIME) ./internal/wire/
	$(GO) test -run=NONE -fuzz=FuzzExecRequestTrailer -fuzztime=$(FUZZ_TIME) ./internal/wire/
	$(GO) test -run=NONE -fuzz=FuzzDecodeModel -fuzztime=$(FUZZ_TIME) ./internal/dnn/

# smoke = the CI ops-smoke job: boot the real daemons with the ops
# sidecar, probe /healthz and /readyz, push client traffic through, and
# lint the live /metrics payload (nonzero request counters required).
smoke:
	@$(GO) build -o bin/ ./cmd/coic-cloud ./cmd/coic-edge ./cmd/coic-client ./cmd/coic-promlint
	@./bin/coic-cloud -listen 127.0.0.1:19090 & cloud=$$!; \
	./bin/coic-edge -listen 127.0.0.1:19091 -cloud 127.0.0.1:19090 -http 127.0.0.1:19191 & edge=$$!; \
	trap 'kill $$edge $$cloud 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS -o /dev/null http://127.0.0.1:19191/healthz 2>/dev/null && break; sleep 0.2; done; \
	curl -fsS http://127.0.0.1:19191/healthz && \
	curl -fsS http://127.0.0.1:19191/readyz && \
	./bin/coic-client -edge 127.0.0.1:19091 -task pano -n 8 -request-id 0xC1C0FFEE >/dev/null && \
	./bin/coic-client -edge 127.0.0.1:19091 -scene smoke -publish-rate 50 -n 4 >/dev/null && \
	./bin/coic-promlint -url http://127.0.0.1:19191/metrics \
		-require coic_requests_total,coic_connections_total,coic_stage_duration_seconds,coic_scene_publish_total

# smoke-gossip = the CI gossip-fleet smoke: a seed edge serves traffic
# alone, two more edges gossip in (migration re-homes the seed's cached
# keys), then one is killed ungracefully: the survivors must detect the
# death (coic_member_alive converges to 2) while staying ready.
smoke-gossip:
	@$(GO) build -o bin/ ./cmd/coic-cloud ./cmd/coic-edge ./cmd/coic-client ./cmd/coic-promlint
	@./bin/coic-cloud -listen 127.0.0.1:19095 & cloud=$$!; \
	./bin/coic-edge -listen 127.0.0.1:19101 -self 127.0.0.1:19101 \
		-gossip-seeds 127.0.0.1:19101 -rf 2 \
		-cloud 127.0.0.1:19095 -http 127.0.0.1:19201 & e1=$$!; \
	trap 'kill $$e1 $$e2 $$e3 $$cloud 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS -o /dev/null http://127.0.0.1:19201/healthz 2>/dev/null && break; sleep 0.2; done; \
	./bin/coic-client -edge 127.0.0.1:19101 -task pano -n 8 -request-id 0xC1C0FFEE >/dev/null && \
	for i in 2 3; do \
		./bin/coic-edge -listen 127.0.0.1:1910$$i -self 127.0.0.1:1910$$i \
			-gossip-seeds 127.0.0.1:19101 -rf 2 \
			-cloud 127.0.0.1:19095 -http 127.0.0.1:1920$$i & eval "e$$i=\$$!"; \
	done; \
	alive() { curl -fsS "http://127.0.0.1:$$1/metrics" 2>/dev/null | awk '$$1 == "coic_member_alive" {print int($$2)}'; }; \
	for i in $$(seq 1 100); do \
		[ "$$(alive 19201)" = 3 ] && [ "$$(alive 19202)" = 3 ] && [ "$$(alive 19203)" = 3 ] && break; sleep 0.2; done; \
	[ "$$(alive 19203)" = 3 ] && \
	kill -9 $$e3 && \
	for i in $$(seq 1 150); do \
		[ "$$(alive 19201)" = 2 ] && [ "$$(alive 19202)" = 2 ] && break; sleep 0.2; done; \
	[ "$$(alive 19201)" = 2 ] && [ "$$(alive 19202)" = 2 ] && \
	curl -fsS -o /dev/null http://127.0.0.1:19201/readyz && \
	./bin/coic-client -edge 127.0.0.1:19102 -task pano -n 8 -request-id 0xC1C0FFEE >/dev/null && \
	./bin/coic-promlint -url http://127.0.0.1:19201/metrics \
		-require coic_member_alive,coic_ring_version,coic_migration_keys_total && \
	echo "gossip fleet smoke: converged to 2 after the kill, survivors ready"

# api = the CI apidiff job: the public surface of the root package must
# stay compatible with the committed baseline commit (skipped with a
# notice if the tool is not installed; CI always runs it).
api:
	@if command -v apidiff >/dev/null 2>&1; then \
		base=$$(cat $(API_BASELINE_FILE)); \
		tmp=$$(mktemp -d); \
		git worktree add --detach $$tmp/base $$base >/dev/null 2>&1; \
		(cd $$tmp/base && apidiff -w $$tmp/base.export .); \
		report=$$(apidiff -incompatible $$tmp/base.export .); \
		git worktree remove --force $$tmp/base >/dev/null 2>&1; rm -rf $$tmp; \
		if [ -n "$$report" ]; then \
			echo "incompatible public API changes vs baseline $$base:"; \
			echo "$$report"; exit 1; fi; \
		echo "public API compatible with baseline $$base"; \
	else \
		echo "apidiff not installed (go install golang.org/x/exp/cmd/apidiff@$(APIDIFF_VERSION), the version CI pins); skipping"; \
	fi

ci: lint build test bench fuzz api smoke smoke-gossip
