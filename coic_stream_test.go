package coic

// Tests for the streaming client API over a live in-process TCP stack:
// out-of-order completion across QoS classes, window backpressure,
// per-ticket cancellation, and deadline shedding at the edge. All of
// them run under -race in CI.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// startStreamStack brings up a cloud and an edge whose uplink pays
// cloudDelay each way, returning the edge Server (for Stats), its
// address, and a stop function.
func startStreamStack(t testing.TB, cloudDelay time.Duration, workers, queue int) (*Server, string, func()) {
	t.Helper()
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A fat link with pure propagation delay: misses stay in flight for
	// ~2×cloudDelay without throttling throughput.
	shape := ShapeSpec("rate 1000mbit delay " + cloudDelay.String())
	if cloudDelay == 0 {
		shape = ""
	}
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithCloudShape(shape),
		WithWorkers(workers),
		WithQueueDepth(queue),
	)
	go edge.Serve(ctx)
	return edge, edgeLn.Addr().String(), cancel
}

func streamClient(t testing.TB, addr string) *Client {
	t.Helper()
	cli, err := NewClient(context.Background(), addr, WithDialParams(testConfig().Params))
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

func waitForStats(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamInteractiveCompletesBeforeQueuedBestEffort is the tentpole
// acceptance test at the public surface: with one worker held busy, an
// interactive request submitted after a best-effort one completes first
// — the scheduler dispatches it first and the unordered reply path
// delivers it without head-of-line blocking.
func TestStreamInteractiveCompletesBeforeQueuedBestEffort(t *testing.T) {
	edge, addr, stop := startStreamStack(t, 250*time.Millisecond, 1, 16)
	defer stop()
	cli := streamClient(t, addr)
	defer cli.Close()

	ctx := context.Background()
	st, err := cli.Stream(ctx, WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	results := st.Results()

	// Occupy the lone worker with a best-effort miss.
	if _, err := st.Submit(ctx, PanoTask("ooo-video", 1, Viewport{FOV: 1.5})); err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "the first fetch to start", func() bool { return edge.Stats().CloudFetches == 1 })

	// Queue another best-effort miss, then an interactive one.
	if _, err := st.Submit(ctx, PanoTask("ooo-video", 2, Viewport{FOV: 1.5})); err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "the best-effort request to queue", func() bool {
		return edge.Stats().AdmittedBestEffort == 2
	})
	ticket, err := st.Submit(ctx, PanoTask("ooo-video", 3, Viewport{FOV: 1.5}).WithQoS(QoSInteractive))
	if err != nil {
		t.Fatal(err)
	}

	var order []int
	for i := 0; i < 3; i++ {
		comp := <-results
		if comp.Err != nil {
			t.Fatalf("completion %d failed: %v", i, comp.Err)
		}
		order = append(order, comp.Request.Pano.Frame)
	}
	// Frame 1 holds the worker, so it finishes first; the interactive
	// frame 3 must beat the queued best-effort frame 2.
	if order[1] != 3 {
		t.Fatalf("completion order = %v, want the interactive frame (3) before the queued best-effort frame (2)", order)
	}
	if comp, err := ticket.Await(ctx); err != nil || comp.Request.Pano.Frame != 3 {
		t.Fatalf("Await = %+v, %v", comp, err)
	}
	if st.Close() != nil {
		t.Fatal("close failed")
	}
	if _, ok := <-results; ok {
		t.Fatal("results channel still open after Close")
	}
	if got := edge.Stats().AdmittedInteractive; got != 1 {
		t.Fatalf("AdmittedInteractive = %d, want 1", got)
	}
}

// TestStreamSubmitBackpressure: Submit is non-blocking while in-flight <
// window and blocks beyond it until a completion frees a slot.
func TestStreamSubmitBackpressure(t *testing.T) {
	_, addr, stop := startStreamStack(t, 400*time.Millisecond, 4, 16)
	defer stop()
	cli := streamClient(t, addr)
	defer cli.Close()

	ctx := context.Background()
	st, err := cli.Stream(ctx, WithWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	start := time.Now()
	t1, err := st.Submit(ctx, PanoTask("bp-video", 1, Viewport{FOV: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := st.Submit(ctx, PanoTask("bp-video", 2, Viewport{FOV: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("submits inside the window took %v — they must not wait for replies", elapsed)
	}

	third := make(chan error, 1)
	go func() {
		_, err := st.Submit(ctx, PanoTask("bp-video", 3, Viewport{FOV: 1.5}))
		third <- err
	}()
	select {
	case err := <-third:
		t.Fatalf("third submit returned (%v) with the window full — no backpressure", err)
	case <-time.After(150 * time.Millisecond):
		// Blocked, as it should be: both slots are held by in-flight
		// fetches that take ~800ms.
	}
	if _, err := t1.Await(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-third:
		if err != nil {
			t.Fatalf("third submit failed after a slot freed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("third submit still blocked after a completion freed a slot")
	}
	if _, err := t2.Await(ctx); err != nil {
		t.Fatal(err)
	}

	// A submit blocked on the window honours its context.
	st2, err := cli.Stream(ctx, WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Submit(ctx, PanoTask("bp-video", 4, Viewport{FOV: 1.5})); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := st2.Submit(expired, PanoTask("bp-video", 5, Viewport{FOV: 1.5})); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit with expiring ctx returned %v, want context.DeadlineExceeded", err)
	}
}

// TestStreamTicketCancelLeavesOthersLive: cancelling one in-flight
// ticket completes it with context.Canceled while a concurrent ticket on
// the same stream still delivers its result.
func TestStreamTicketCancelLeavesOthersLive(t *testing.T) {
	edge, addr, stop := startStreamStack(t, 400*time.Millisecond, 4, 16)
	defer stop()
	cli := streamClient(t, addr)
	defer cli.Close()

	ctx := context.Background()
	st, err := cli.Stream(ctx, WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	doomed, err := st.Submit(ctx, PanoTask("cancel-video", 1, Viewport{FOV: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := st.Submit(ctx, PanoTask("cancel-video", 2, Viewport{FOV: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "both fetches to start", func() bool { return edge.Stats().CloudFetches == 2 })
	doomed.Cancel()

	comp, err := doomed.Await(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ticket completed with %v, want context.Canceled", err)
	}
	if comp.ID != doomed.ID() {
		t.Fatalf("completion id %d for ticket %d", comp.ID, doomed.ID())
	}
	if comp2, err := survivor.Await(ctx); err != nil || comp2.Err != nil {
		t.Fatalf("survivor failed after its neighbour was cancelled: %v / %v", err, comp2.Err)
	}
}

// TestStreamDeadlineShedInQueue: a request whose wall-clock deadline
// expires while queued behind a busy worker is shed at the edge —
// visible as ErrDeadlineExceeded on the completion, a DeadlineSheds
// counter tick, and no extra cloud fetch.
func TestStreamDeadlineShedInQueue(t *testing.T) {
	edge, addr, stop := startStreamStack(t, 400*time.Millisecond, 1, 16)
	defer stop()
	cli := streamClient(t, addr)
	defer cli.Close()

	ctx := context.Background()
	st, err := cli.Stream(ctx, WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if _, err := st.Submit(ctx, PanoTask("shed-video", 1, Viewport{FOV: 1.5})); err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "the first fetch to start", func() bool { return edge.Stats().CloudFetches == 1 })

	doomed, err := st.Submit(ctx, PanoTask("shed-video", 2, Viewport{FOV: 1.5}).
		WithQoS(QoSInteractive).WithDeadline(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := doomed.Await(ctx)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued-past-deadline ticket completed with %v, want ErrDeadlineExceeded", err)
	}
	if comp.Latency <= 0 {
		t.Fatal("completion latency not stamped")
	}
	stats := edge.Stats()
	if stats.DeadlineSheds != 1 {
		t.Fatalf("DeadlineSheds = %d, want 1", stats.DeadlineSheds)
	}
	if stats.CloudFetches != 1 {
		t.Fatalf("CloudFetches = %d, want 1 — the shed request must not reach the cloud", stats.CloudFetches)
	}
}

// TestLegacyClientMethodsOverMux: the v1/v2 per-task client surface —
// kept verbatim on the new demultiplexed Client — still works, including
// the deprecated Dial wrapper and every context-free convenience.
func TestLegacyClientMethodsOverMux(t *testing.T) {
	_, addr, stop := startStreamStack(t, 0, 4, 16)
	defer stop()

	p := testConfig().Params
	cli, err := NewClient(context.Background(), addr,
		WithDialParams(p), WithDialMode(ModeCoIC), WithClientID(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Client == nil || cli.Mode != ModeCoIC {
		t.Fatalf("client fields = %+v", cli)
	}

	res, lat, err := cli.Recognize(ClassTree, 9)
	if err != nil || res.Label == "" || lat <= 0 {
		t.Fatalf("Recognize = %+v, %v, %v", res, lat, err)
	}
	if _, err := cli.Render(AnnotationModelID(ClassTree)); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Pano("legacy-video", 0, Viewport{FOV: 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.PanoContext(context.Background(), "legacy-video", 1, Viewport{FOV: 1.5}); err != nil {
		t.Fatal(err)
	}
	// An unknown model surfaces a remote error, not a hang.
	if _, err := cli.Render("no/such/model"); err == nil {
		t.Fatal("unknown model succeeded")
	}

	// The deprecated dial wrappers still produce working clients.
	old, err := Dial(addr, p, ModeCoIC, "")
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if _, err := old.Pano("legacy-video", 2, Viewport{FOV: 1.5}); err != nil {
		t.Fatal(err)
	}
}

// TestRunQoSSmoke exercises the ablation end to end with a tiny request
// count: three rows, fifo strictly slower than the scheduled row at p99
// is timing-dependent, so only the table's shape is asserted.
func TestRunQoSSmoke(t *testing.T) {
	tab, err := RunQoS(testConfig().Params, 3, 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows()
	if len(rows) != 3 {
		t.Fatalf("RunQoS rows = %d, want 3", len(rows))
	}
	for i, want := range []string{"none", "fifo", "qos"} {
		if rows[i][0] != want {
			t.Fatalf("row %d = %q, want %q", i, rows[i][0], want)
		}
	}
}

// TestStreamContextCancelsInflight: killing the stream's context cancels
// every in-flight ticket at the edge; completions surface as canceled.
func TestStreamContextCancelsInflight(t *testing.T) {
	edge, addr, stop := startStreamStack(t, 500*time.Millisecond, 4, 16)
	defer stop()
	cli := streamClient(t, addr)
	defer cli.Close()

	sctx, cancel := context.WithCancel(context.Background())
	st, err := cli.Stream(sctx, WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx := context.Background()
	t1, err := st.Submit(ctx, PanoTask("sctx-video", 1, Viewport{FOV: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := st.Submit(ctx, PanoTask("sctx-video", 2, Viewport{FOV: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "both fetches to start", func() bool { return edge.Stats().CloudFetches == 2 })
	cancel()

	for _, tk := range []*Ticket{t1, t2} {
		if _, err := tk.Await(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("ticket completed with %v after stream ctx death, want context.Canceled", err)
		}
	}
	if _, err := st.Submit(ctx, PanoTask("sctx-video", 3, Viewport{FOV: 1.5})); !errors.Is(err, context.Canceled) {
		t.Fatalf("submit on a dead stream = %v, want context.Canceled", err)
	}
}
